// Package fileserv implements SNIPE file servers, sinks and sources
// (paper §3.2, §5.9).
//
// A file server "is a host which is capable of spawning file sinks,
// which accept data from SNIPE processes to be stored in files, and
// make that data available to other processes". Opening a file for
// writing spawns a sink that stores SNIPE messages; opening for
// reading spawns a source that streams the file to a SNIPE address.
// Files are named by LIFNs bound to replica locations in RC metadata,
// replicated across servers by replication daemons "according to local
// policy, redundancy requirements, and demand" (§3.2), and exported
// over HTTP for external programs.
package fileserv

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"snipe/internal/comm"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/task"
	"snipe/internal/xdr"
)

// File protocol operations, carried in TagFile messages.
const (
	opAppend uint8 = iota + 1 // sink write: append a chunk
	opCommit                  // sink close: finalize the file
	opRead                    // source open: stream file to an address
	opData                    // source data chunk (server → reader)
	opList                    // list files (reply opListResp)
	opListResp
	opPull // replicate: fetch file from another server
	opAck  // generic op acknowledgement with status
)

// Errors of the file service.
var (
	// ErrNotFound indicates a file the server does not hold.
	ErrNotFound = errors.New("fileserv: file not found")
	// ErrRemote wraps a server-reported failure.
	ErrRemote = errors.New("fileserv: server error")
)

// chunkSize bounds one file transfer message.
const chunkSize = 256 << 10

// fileMsg is the wire format of TagFile payloads.
type fileMsg struct {
	Op    uint8
	ReqID uint64
	Name  string // file name on the server
	Dst   string // reader URN (opRead), source server URN (opPull)
	Data  []byte
	EOF   bool
	OK    bool
	Err   string
	Names []string // opListResp
}

func (f *fileMsg) encode() []byte {
	e := xdr.NewEncoder(64 + len(f.Data))
	e.PutUint8(f.Op)
	e.PutUint64(f.ReqID)
	e.PutString(f.Name)
	e.PutString(f.Dst)
	e.PutBytes(f.Data)
	e.PutBool(f.EOF)
	e.PutBool(f.OK)
	e.PutString(f.Err)
	e.PutStringSlice(f.Names)
	return e.Bytes()
}

// Per-field wire-decode caps handed to the xdr *Max decoders, so a
// corrupt length prefix fails fast instead of sizing an allocation.
const (
	maxWireName  = 4096     // file names, URNs, error strings
	maxWireChunk = 4 << 20  // one transfer chunk
	maxWireNames = 64 << 10 // listing entries, each capped at maxWireName
)

func decodeFileMsg(b []byte) (*fileMsg, error) {
	d := xdr.NewDecoder(b)
	f := &fileMsg{}
	var err error
	if f.Op, err = d.Uint8(); err != nil {
		return nil, err
	}
	if f.ReqID, err = d.Uint64(); err != nil {
		return nil, err
	}
	if f.Name, err = d.StringMax(maxWireName); err != nil {
		return nil, err
	}
	if f.Dst, err = d.StringMax(maxWireName); err != nil {
		return nil, err
	}
	if f.Data, err = d.BytesCopyMax(maxWireChunk); err != nil {
		return nil, err
	}
	if f.EOF, err = d.Bool(); err != nil {
		return nil, err
	}
	if f.OK, err = d.Bool(); err != nil {
		return nil, err
	}
	if f.Err, err = d.StringMax(maxWireName); err != nil {
		return nil, err
	}
	if f.Names, err = d.StringSliceMax(maxWireNames, maxWireName); err != nil {
		return nil, err
	}
	return f, nil
}

// ServiceName is the well-known replicated-service name under which
// file servers register.
const ServiceName = "fileserver"

// Server is one SNIPE file server.
type Server struct {
	name string
	urn  string
	cat  naming.Catalog
	ep   *comm.Endpoint

	mu      sync.Mutex
	files   map[string][]byte
	partial map[string][]byte // in-progress sink writes, keyed by writer+name
	pulls   map[uint64]*pullState
	pullID  uint64
	closed  bool
}

// pullState tracks one in-progress server-to-server replica fetch.
type pullState struct {
	buf       []byte
	requester string // who asked for the replication
	ackID     uint64 // reqID to acknowledge with
	name      string
}

// NewServer creates and registers a file server named name.
func NewServer(name string, cat naming.Catalog, listens []comm.Route) (*Server, error) {
	s := &Server{
		name:    name,
		urn:     naming.ProcessURN(name, "fileserver"),
		cat:     cat,
		files:   make(map[string][]byte),
		partial: make(map[string][]byte),
		pulls:   make(map[uint64]*pullState),
	}
	s.ep = comm.NewEndpoint(s.urn,
		comm.WithResolver(naming.NewResolver(cat)),
		comm.WithHandler(s.handle, task.TagFile))
	if len(listens) == 0 {
		listens = []comm.Route{{Transport: "tcp", Addr: "127.0.0.1:0"}}
	}
	var routes []comm.Route
	for _, l := range listens {
		route, err := s.ep.Listen(l.Spec())
		if err != nil {
			s.ep.Close()
			return nil, fmt.Errorf("fileserv: listen: %w", err)
		}
		routes = append(routes, route)
	}
	if err := naming.Register(cat, s.urn, routes); err != nil {
		s.ep.Close()
		return nil, err
	}
	cat.Add(naming.ServiceURN(ServiceName), rcds.AttrLocation, s.urn)
	// Advertise the access protocols (§5.2.2).
	cat.Add(s.urn, rcds.AttrProtocol, "snipe-msg")
	cat.Add(s.urn, rcds.AttrProtocol, "http")
	return s, nil
}

// URN returns the server's process URN.
func (s *Server) URN() string { return s.urn }

// Close deregisters and stops the server.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cat.Remove(naming.ServiceURN(ServiceName), rcds.AttrLocation, s.urn)
	s.ep.Close()
}

// Put stores a file directly (server-side API).
func (s *Server) Put(name string, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.files[name] = cp
	s.mu.Unlock()
	s.registerLocation(name)
}

// Get retrieves a file (server-side API).
func (s *Server) Get(name string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.files[name]
	return data, ok
}

// Files lists stored file names, sorted.
func (s *Server) Files() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.files))
	for n := range s.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// registerLocation binds the file's URN to this server in RC metadata.
func (s *Server) registerLocation(name string) {
	s.cat.Add(naming.FileURN(name), rcds.AttrLocation, s.urn)
}

func (s *Server) handle(m *comm.Message) {
	f, err := decodeFileMsg(m.Payload)
	if err != nil {
		return
	}
	switch f.Op {
	case opAppend:
		key := m.Src + "\x00" + f.Name
		s.mu.Lock()
		s.partial[key] = append(s.partial[key], f.Data...)
		s.mu.Unlock()

	case opCommit:
		key := m.Src + "\x00" + f.Name
		s.mu.Lock()
		data := s.partial[key]
		delete(s.partial, key)
		s.files[f.Name] = data
		s.mu.Unlock()
		s.registerLocation(f.Name)
		s.reply(m.Src, &fileMsg{Op: opAck, ReqID: f.ReqID, Name: f.Name, OK: true})

	case opRead:
		data, ok := s.Get(f.Name)
		if !ok {
			s.reply(f.Dst, &fileMsg{Op: opData, ReqID: f.ReqID, Name: f.Name, OK: false, Err: ErrNotFound.Error(), EOF: true})
			return
		}
		s.streamTo(f.Dst, f.ReqID, f.Name, data)

	case opList:
		s.reply(m.Src, &fileMsg{Op: opListResp, ReqID: f.ReqID, OK: true, Names: s.Files()})

	case opPull:
		// Replicate: stream the file from the named peer server into a
		// pull buffer. The peer's opData replies arrive back through
		// this handler and rendezvous by pull ID.
		s.mu.Lock()
		s.pullID++
		pid := s.pullID
		s.pulls[pid] = &pullState{requester: m.Src, ackID: f.ReqID, name: f.Name}
		s.mu.Unlock()
		req := &fileMsg{Op: opRead, ReqID: pid, Name: f.Name, Dst: s.urn}
		if err := s.ep.Send(f.Dst, task.TagFile, req.encode()); err != nil {
			s.mu.Lock()
			delete(s.pulls, pid)
			s.mu.Unlock()
			s.reply(m.Src, &fileMsg{Op: opAck, ReqID: f.ReqID, Name: f.Name, OK: false, Err: err.Error()})
		}

	case opData:
		// A chunk of an in-progress pull.
		s.mu.Lock()
		ps, ok := s.pulls[f.ReqID]
		if !ok {
			s.mu.Unlock()
			return
		}
		if !f.OK {
			delete(s.pulls, f.ReqID)
			s.mu.Unlock()
			s.reply(ps.requester, &fileMsg{Op: opAck, ReqID: ps.ackID, Name: ps.name, OK: false, Err: f.Err})
			return
		}
		ps.buf = append(ps.buf, f.Data...)
		if !f.EOF {
			s.mu.Unlock()
			return
		}
		delete(s.pulls, f.ReqID)
		data := ps.buf
		s.mu.Unlock()
		s.Put(ps.name, data)
		s.reply(ps.requester, &fileMsg{Op: opAck, ReqID: ps.ackID, Name: ps.name, OK: true})
	}
}

func (s *Server) reply(dst string, f *fileMsg) {
	s.ep.Send(dst, task.TagFile, f.encode())
}

func (s *Server) streamTo(dst string, reqID uint64, name string, data []byte) {
	for off := 0; ; off += chunkSize {
		end := off + chunkSize
		last := false
		if end >= len(data) {
			end = len(data)
			last = true
		}
		chunk := &fileMsg{Op: opData, ReqID: reqID, Name: name, Data: data[off:end], EOF: last, OK: true}
		s.reply(dst, chunk)
		if last {
			return
		}
	}
}

// ServeHTTP exports the store over HTTP ("access to the files
// themselves is provided by ordinary file access protocols such as
// HTTP", §3.2): GET /files/<name>.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/files/")
	if name == "" || name == r.URL.Path {
		http.NotFound(w, r)
		return
	}
	data, ok := s.Get(name)
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}
