//go:build go1.18

package fileserv

import (
	"bytes"
	"testing"
)

func FuzzDecodeFileMsg(f *testing.F) {
	for _, m := range []*fileMsg{
		{Op: opRead, ReqID: 1, Name: "data.txt", Dst: "urn:reader"},
		{Op: opData, ReqID: 2, Data: []byte("chunk"), EOF: true, OK: true},
		{Op: opListResp, ReqID: 3, OK: true, Names: []string{"a", "b"}},
		{Op: opAppend, ReqID: 4, Name: "out", Data: bytes.Repeat([]byte{7}, 64), Err: "disk full"},
	} {
		f.Add(m.encode())
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := decodeFileMsg(b)
		if err != nil {
			return
		}
		again, err := decodeFileMsg(m.encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Op != m.Op || again.ReqID != m.ReqID || again.Name != m.Name ||
			!bytes.Equal(again.Data, m.Data) || again.EOF != m.EOF || again.OK != m.OK ||
			again.Err != m.Err || len(again.Names) != len(m.Names) {
			t.Fatalf("round-trip mismatch:\n%+v\n%+v", m, again)
		}
	})
}
