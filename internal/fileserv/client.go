package fileserv

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"snipe/internal/comm"
	"snipe/internal/lifn"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/task"
)

var reqIDs atomic.Uint64

// Client gives a SNIPE process file access through its own endpoint.
// One Client should not be used from multiple goroutines concurrently
// with other TagFile consumers on the same endpoint.
type Client struct {
	cat     naming.Catalog
	ep      *comm.Endpoint
	timeout time.Duration
}

// NewClient builds a file client over an endpoint.
func NewClient(cat naming.Catalog, ep *comm.Endpoint) *Client {
	return &Client{cat: cat, ep: ep, timeout: 10 * time.Second}
}

// SetTimeout adjusts the per-request timeout (transfer deadline).
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Servers returns the registered file-server URNs.
func (c *Client) Servers() ([]string, error) {
	return c.cat.Values(naming.ServiceURN(ServiceName), rcds.AttrLocation)
}

// Store writes data to the named file on a server: a one-shot sink.
func (c *Client) Store(serverURN, name string, data []byte) error {
	sink := c.OpenSink(serverURN, name)
	if err := sink.Write(data); err != nil {
		return err
	}
	return sink.Close(10 * time.Second)
}

// Fetch retrieves a whole file from a server: a one-shot source
// streaming back to this client.
func (c *Client) Fetch(serverURN, name string) ([]byte, error) {
	reqID := reqIDs.Add(1)
	req := &fileMsg{Op: opRead, ReqID: reqID, Name: name, Dst: c.ep.URN()}
	if err := c.ep.Send(serverURN, task.TagFile, req.encode()); err != nil {
		return nil, err
	}
	var out []byte
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout)
	defer cancel()
	for {
		m, err := c.ep.RecvMatch(ctx, serverURN, task.TagFile)
		if err != nil {
			return nil, err
		}
		f, err := decodeFileMsg(m.Payload)
		if err != nil {
			return nil, err
		}
		if f.Op != opData || f.ReqID != reqID {
			continue // stale reply from an abandoned request
		}
		if !f.OK {
			return nil, fmt.Errorf("%w: %s", ErrRemote, f.Err)
		}
		out = append(out, f.Data...)
		if f.EOF {
			return out, nil
		}
	}
}

// FetchAny resolves the file's replica locations from RC metadata and
// fetches from the best one, failing over across replicas — duplicated
// file access "via location of closest resource daemons" (§6).
func (c *Client) FetchAny(name string, localNets []string) ([]byte, error) {
	locs, err := lifn.Locations(c.cat, naming.FileURN(name))
	if err != nil {
		return nil, err
	}
	ranked := lifn.SelectLocation(locs, c.ep.URN(), localNets)
	var lastErr error
	for _, server := range ranked {
		data, err := c.Fetch(server, name)
		if err == nil {
			return data, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("fileserv: all %d replicas failed: %w", len(ranked), lastErr)
}

// StreamTo spawns a file source on the server: the server reads the
// named file and sends it, as SNIPE messages, to the given destination
// URN (§5.9: "a file source process reads a file consisting of SNIPE
// messages and sends them to a SNIPE address"). The receiver collects
// it with ReceiveStream.
func (c *Client) StreamTo(serverURN, name, dstURN string) error {
	req := &fileMsg{Op: opRead, ReqID: reqIDs.Add(1), Name: name, Dst: dstURN}
	return c.ep.Send(serverURN, task.TagFile, req.encode())
}

// ReceiveStream collects one file streamed to ep by a file source,
// returning its name and contents. It accepts the first stream that
// arrives from srcServer ("" = any server).
func ReceiveStream(ep *comm.Endpoint, srcServer string, timeout time.Duration) (name string, data []byte, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var cur *fileMsg
	for {
		m, err := ep.RecvMatch(ctx, srcServer, task.TagFile)
		if err != nil {
			return "", nil, err
		}
		f, err := decodeFileMsg(m.Payload)
		if err != nil || f.Op != opData {
			continue
		}
		if !f.OK {
			return f.Name, nil, fmt.Errorf("%w: %s", ErrRemote, f.Err)
		}
		if cur == nil {
			cur = f
		} else if f.ReqID != cur.ReqID || f.Name != cur.Name {
			continue // a different interleaved stream; out of scope here
		}
		data = append(data, f.Data...)
		if f.EOF {
			return f.Name, data, nil
		}
	}
}

// List returns the files held by a server.
func (c *Client) List(serverURN string) ([]string, error) {
	reqID := reqIDs.Add(1)
	req := &fileMsg{Op: opList, ReqID: reqID}
	if err := c.ep.Send(serverURN, task.TagFile, req.encode()); err != nil {
		return nil, err
	}
	f, err := c.awaitOp(serverURN, opListResp, reqID, c.timeout)
	if err != nil {
		return nil, err
	}
	return f.Names, nil
}

// Pull instructs server to replicate the named file from fromServer.
func (c *Client) Pull(serverURN, name, fromServerURN string) error {
	reqID := reqIDs.Add(1)
	req := &fileMsg{Op: opPull, ReqID: reqID, Name: name, Dst: fromServerURN}
	if err := c.ep.Send(serverURN, task.TagFile, req.encode()); err != nil {
		return err
	}
	f, err := c.awaitOp(serverURN, opAck, reqID, c.timeout)
	if err != nil {
		return err
	}
	if !f.OK {
		return fmt.Errorf("%w: %s", ErrRemote, f.Err)
	}
	return nil
}

func (c *Client) awaitOp(src string, op uint8, reqID uint64, timeout time.Duration) (*fileMsg, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for {
		m, err := c.ep.RecvMatch(ctx, src, task.TagFile)
		if err != nil {
			return nil, err
		}
		f, err := decodeFileMsg(m.Payload)
		if err != nil {
			return nil, err
		}
		if f.Op == op && f.ReqID == reqID {
			return f, nil
		}
	}
}

// Sink is an open-for-writing file: "a file sink process reads SNIPE
// messages sent to it and stores them into a file" (§5.9). Writes are
// streamed as messages; Close commits the file and waits for the
// server's acknowledgement.
type Sink struct {
	c      *Client
	server string
	name   string
}

// OpenSink opens the named file for writing on the server.
func (c *Client) OpenSink(serverURN, name string) *Sink {
	return &Sink{c: c, server: serverURN, name: name}
}

// Write appends data to the sink.
func (s *Sink) Write(data []byte) error {
	for off := 0; off < len(data) || off == 0; off += chunkSize {
		end := off + chunkSize
		if end > len(data) {
			end = len(data)
		}
		msg := &fileMsg{Op: opAppend, Name: s.name, Data: data[off:end]}
		if err := s.c.ep.Send(s.server, task.TagFile, msg.encode()); err != nil {
			return err
		}
		if len(data) == 0 {
			break
		}
	}
	return nil
}

// Close commits the file, waits for the server's acknowledgement, and
// registers the file's location in RC metadata.
func (s *Sink) Close(timeout time.Duration) error {
	reqID := reqIDs.Add(1)
	msg := &fileMsg{Op: opCommit, ReqID: reqID, Name: s.name}
	if err := s.c.ep.Send(s.server, task.TagFile, msg.encode()); err != nil {
		return err
	}
	f, err := s.c.awaitOp(s.server, opAck, reqID, timeout)
	if err != nil {
		return err
	}
	if !f.OK {
		return fmt.Errorf("%w: %s", ErrRemote, f.Err)
	}
	return nil
}

// ReplicationPolicy configures a replication daemon.
type ReplicationPolicy struct {
	MinReplicas int
	Interval    time.Duration
}

// Replicator is a replication daemon: it watches the file population
// across all registered servers and creates replicas until every file
// meets the redundancy requirement — "replication daemons on these
// servers communicate with one another, creating and deleting replicas
// of files according to local policy, redundancy requirements, and
// demand" (§3.2).
type Replicator struct {
	c      *Client
	policy ReplicationPolicy

	mu      sync.Mutex
	stopped bool
	done    chan struct{}
	wg      sync.WaitGroup
	copied  int
}

// NewReplicator builds a replication daemon over a dedicated client.
func NewReplicator(c *Client, policy ReplicationPolicy) *Replicator {
	if policy.MinReplicas <= 0 {
		policy.MinReplicas = 2
	}
	if policy.Interval <= 0 {
		policy.Interval = 500 * time.Millisecond
	}
	return &Replicator{c: c, policy: policy, done: make(chan struct{})}
}

// Start begins the replication loop.
func (r *Replicator) Start() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		ticker := time.NewTicker(r.policy.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-r.done:
				return
			case <-ticker.C:
				r.RunOnce()
			}
		}
	}()
}

// Stop halts the loop.
func (r *Replicator) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	close(r.done)
	r.mu.Unlock()
	r.wg.Wait()
}

// Copied reports how many replicas this daemon has created.
func (r *Replicator) Copied() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.copied
}

// RunOnce performs one replication sweep and returns the number of
// replicas created.
func (r *Replicator) RunOnce() int {
	servers, err := r.c.Servers()
	if err != nil || len(servers) < 2 {
		return 0
	}
	// Census: file → servers holding it.
	holders := make(map[string][]string)
	for _, srv := range servers {
		files, err := r.c.List(srv)
		if err != nil {
			continue // server down; heal on a later sweep
		}
		for _, f := range files {
			holders[f] = append(holders[f], srv)
		}
	}
	created := 0
	for file, have := range holders {
		want := r.policy.MinReplicas
		if want > len(servers) {
			want = len(servers)
		}
		if len(have) >= want {
			continue
		}
		haveSet := make(map[string]bool, len(have))
		for _, h := range have {
			haveSet[h] = true
		}
		src := have[0]
		for _, dst := range servers {
			if len(have) >= want {
				break
			}
			if haveSet[dst] {
				continue
			}
			if err := r.c.Pull(dst, file, src); err != nil {
				continue
			}
			have = append(have, dst)
			created++
		}
	}
	r.mu.Lock()
	r.copied += created
	r.mu.Unlock()
	return created
}
