// Package naming connects the communications layer to the RC metadata
// registry: SNIPE processes are addressable by URN because their
// communication addresses are published as RC assertions (paper §3.1),
// and "unicast message routing is performed using the RCDS metadata for
// the destination process" (§5.3).
//
// # URN conventions
//
// The SNIPE namespace is a set of distinguished prefixes over the RCDS
// URI space (§5.2): hosts get URLs under "snipe://hosts/", processes
// URNs under "urn:snipe:process:", and groups, files and replicated
// services their own URN prefixes (GroupPrefix, FilePrefix,
// ServicePrefix). The constructors (ProcessURN, HostURL, …) are the
// only place these spellings are assembled, so the convention lives
// here and nowhere else. Under a sharded catalog the prefix does not
// pick the replica group — ownership hashes over the scheme-stripped
// path (ShardOf), so "snipe://hosts/h1" and an equivalent URN land on
// the same shard.
//
// # Layers
//
// The package is a thin adapter: Catalog abstracts "some RCDS" —
// either an in-process *rcds.Store or a remote *rcds.Client, including
// a shard-routing one — behind context-less reads and writes;
// Register/Unregister publish a process's communication addresses;
// Resolver caches URN→address resolutions with a TTL unless the client
// already maintains its watch-coherent read cache, which supersedes it.
package naming

import (
	"context"
	"fmt"
	"sync"
	"time"

	"snipe/internal/comm"
	"snipe/internal/rcds"
	"snipe/internal/stats"
)

// URN and URL constructors for the SNIPE namespace. Hosts get
// distinguished URLs, processes distinguished URNs (§5.2).
const (
	// ProcessPrefix is the URN prefix for SNIPE processes.
	ProcessPrefix = "urn:snipe:process:"
	// HostPrefix is the distinguished-URL prefix for SNIPE hosts.
	HostPrefix = "snipe://hosts/"
	// GroupPrefix is the URN prefix for multicast groups.
	GroupPrefix = "urn:snipe:group:"
	// FilePrefix is the URN prefix for SNIPE-managed files.
	FilePrefix = "urn:snipe:file:"
	// ServicePrefix is the URN prefix for replicated services.
	ServicePrefix = "urn:snipe:service:"
	// LivenessPrefix is the distinguished-URL prefix for liveness
	// metadata that is not per-host: gossip group digests live under
	// it, one URI per group (see internal/gossip).
	LivenessPrefix = "snipe://liveness/"
)

// ProcessURN returns the distinguished URN for a process.
func ProcessURN(host, name string) string {
	return ProcessPrefix + host + ":" + name
}

// HostURL returns the distinguished URL for a host.
func HostURL(name string) string { return HostPrefix + name }

// GroupURN returns the URN for a multicast group.
func GroupURN(name string) string { return GroupPrefix + name }

// FileURN returns the URN for a managed file.
func FileURN(name string) string { return FilePrefix + name }

// ShardKey returns the portion of a SNIPE name that catalog sharding
// hashes over — the scheme-stripped path, so equivalent URL and URN
// spellings agree. Re-exported from rcds for naming-layer callers.
func ShardKey(uri string) string { return rcds.ShardKey(uri) }

// ShardOf returns the replica group owning uri in an n-group sharded
// catalog — the placement function for anyone reasoning about where a
// name's metadata lives. Re-exported from rcds.
func ShardOf(uri string, n int) int { return rcds.ShardOf(uri, n) }

// ServiceURN returns the URN for a replicated service.
func ServiceURN(name string) string { return ServicePrefix + name }

// LivenessGroupURI returns the distinguished URL under which gossip
// group g's liveness digest is published — ONE catalog record per
// group, replacing per-host heartbeat records on the catalog hot path.
func LivenessGroupURI(g int) string { return fmt.Sprintf("%sgroup/%d", LivenessPrefix, g) }

// Catalog is the RC metadata access surface SNIPE components need;
// satisfied by *rcds.Client (remote replicas) and by in-process stores
// via StoreCatalog.
type Catalog interface {
	Values(uri, name string) ([]string, error)
	FirstValue(uri, name string) (string, bool, error)
	URIs(prefix string) ([]string, error)
	Add(uri, name, value string) error
	Remove(uri, name, value string) error
	RemoveAll(uri, name string) error
	Set(uri, name, value string) error
}

// storeCatalog adapts an in-process rcds.Store to Catalog, for
// single-process universes and tests.
type storeCatalog struct{ s *rcds.Store }

// StoreCatalog wraps a local store as a Catalog.
func StoreCatalog(s *rcds.Store) Catalog { return storeCatalog{s} }

func (c storeCatalog) Values(uri, name string) ([]string, error) { return c.s.Values(uri, name), nil }
func (c storeCatalog) FirstValue(uri, name string) (string, bool, error) {
	v, ok := c.s.FirstValue(uri, name)
	return v, ok, nil
}
func (c storeCatalog) URIs(prefix string) ([]string, error) { return c.s.URIs(prefix), nil }
func (c storeCatalog) Add(uri, name, value string) error    { c.s.Add(uri, name, value); return nil }
func (c storeCatalog) Remove(uri, name, value string) error {
	c.s.Remove(uri, name, value)
	return nil
}
func (c storeCatalog) RemoveAll(uri, name string) error { c.s.RemoveAll(uri, name); return nil }

// MetricsSnapshot exposes the wrapped store's metrics; callers holding
// a Catalog discover it by interface assertion.
func (c storeCatalog) MetricsSnapshot() stats.Snapshot { return c.s.MetricsSnapshot() }
func (c storeCatalog) Set(uri, name, value string) error {
	c.s.Set(uri, name, value)
	return nil
}

// Subscribe exposes the wrapped store's push subscriptions so that
// watchers holding a Catalog (the liveness monitor) can discover the
// cheap event channel by interface assertion instead of polling.
func (c storeCatalog) Subscribe(prefix string, ch chan rcds.Event) int {
	return c.s.Subscribe(prefix, ch)
}

// Unsubscribe cancels a Subscribe registration.
func (c storeCatalog) Unsubscribe(id int) { c.s.Unsubscribe(id) }

// clientCatalog adapts a context-first *rcds.Client to the context-less
// Catalog interface: each call runs under a deadline derived from the
// client's configured per-request timeout. Components that want
// cancellation use the client directly; Catalog holders get the same
// bounded-time behavior the old timeout-signature wrappers provided.
type clientCatalog struct{ c *rcds.Client }

// ClientCatalog wraps a remote RCDS client as a Catalog. The wrapper
// also forwards the discovery faces callers probe for by interface
// assertion: ReadCacheActive (Resolver), MetricsSnapshot (daemon
// status), and the liveness monitor's long-poll Wait.
func ClientCatalog(c *rcds.Client) Catalog { return clientCatalog{c} }

// Client returns the wrapped RCDS client, for callers that own its
// lifecycle (core.Universe.Close) or need the context-first API.
func (cc clientCatalog) Client() *rcds.Client { return cc.c }

func (cc clientCatalog) opCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), cc.c.Timeout())
}

func (cc clientCatalog) Values(uri, name string) ([]string, error) {
	ctx, cancel := cc.opCtx()
	defer cancel()
	return cc.c.Values(ctx, uri, name)
}

func (cc clientCatalog) FirstValue(uri, name string) (string, bool, error) {
	ctx, cancel := cc.opCtx()
	defer cancel()
	return cc.c.FirstValue(ctx, uri, name)
}

func (cc clientCatalog) URIs(prefix string) ([]string, error) {
	ctx, cancel := cc.opCtx()
	defer cancel()
	return cc.c.URIs(ctx, prefix)
}

func (cc clientCatalog) Add(uri, name, value string) error {
	ctx, cancel := cc.opCtx()
	defer cancel()
	return cc.c.Add(ctx, uri, name, value)
}

func (cc clientCatalog) Remove(uri, name, value string) error {
	ctx, cancel := cc.opCtx()
	defer cancel()
	return cc.c.Remove(ctx, uri, name, value)
}

func (cc clientCatalog) RemoveAll(uri, name string) error {
	ctx, cancel := cc.opCtx()
	defer cancel()
	return cc.c.RemoveAll(ctx, uri, name)
}

func (cc clientCatalog) Set(uri, name, value string) error {
	ctx, cancel := cc.opCtx()
	defer cancel()
	return cc.c.Set(ctx, uri, name, value)
}

// ReadCacheActive reports whether the wrapped client caches reads
// coherently; the Resolver disables its own TTL cache when so.
func (cc clientCatalog) ReadCacheActive() bool { return cc.c.ReadCacheActive() }

// MetricsSnapshot forwards the client's metrics registry.
func (cc clientCatalog) MetricsSnapshot() stats.Snapshot { return cc.c.MetricsSnapshot() }

// Wait forwards the client's long-poll, satisfying the liveness
// monitor's waiter face. The caller supplies the context: long polls
// outlive the per-request timeout by design.
func (cc clientCatalog) Wait(ctx context.Context, since uint64, timeout time.Duration) (uint64, error) {
	return cc.c.Wait(ctx, since, timeout)
}

// gatedCatalog wraps a Catalog behind a reachability gate: every
// operation first consults gate and fails with its error while the
// gate is down. Combined with netsim's Fabric.Gate this models a
// network partition between a node and its RC replica — reads and
// heartbeat writes both stop, which is exactly how a partition looks
// from either side of it.
type gatedCatalog struct {
	cat  Catalog
	gate func() error
}

// GatedCatalog wraps cat so that every operation fails with gate's
// error whenever gate returns non-nil.
func GatedCatalog(cat Catalog, gate func() error) Catalog {
	return gatedCatalog{cat: cat, gate: gate}
}

func (g gatedCatalog) Values(uri, name string) ([]string, error) {
	if err := g.gate(); err != nil {
		return nil, err
	}
	return g.cat.Values(uri, name)
}

func (g gatedCatalog) FirstValue(uri, name string) (string, bool, error) {
	if err := g.gate(); err != nil {
		return "", false, err
	}
	return g.cat.FirstValue(uri, name)
}

func (g gatedCatalog) URIs(prefix string) ([]string, error) {
	if err := g.gate(); err != nil {
		return nil, err
	}
	return g.cat.URIs(prefix)
}

func (g gatedCatalog) Add(uri, name, value string) error {
	if err := g.gate(); err != nil {
		return err
	}
	return g.cat.Add(uri, name, value)
}

func (g gatedCatalog) Remove(uri, name, value string) error {
	if err := g.gate(); err != nil {
		return err
	}
	return g.cat.Remove(uri, name, value)
}

func (g gatedCatalog) RemoveAll(uri, name string) error {
	if err := g.gate(); err != nil {
		return err
	}
	return g.cat.RemoveAll(uri, name)
}

func (g gatedCatalog) Set(uri, name, value string) error {
	if err := g.gate(); err != nil {
		return err
	}
	return g.cat.Set(uri, name, value)
}

// Resolver resolves URNs to routes via RC metadata, with a small
// negative-and-positive cache so that message sends do not hammer the
// RC servers. Cache entries are invalidated quickly (default 150ms)
// because stale addresses are rediscovered by the endpoint's retry
// loop anyway — the paper's "processes that do not notice its
// migration ... will find its new location via the RC servers" (§5.6).
type Resolver struct {
	cat Catalog
	ttl time.Duration

	mu    sync.Mutex
	cache map[string]cacheEntry
}

type cacheEntry struct {
	routes  []comm.Route
	expires time.Time
}

// NewResolver builds a resolver over cat. When the catalog itself
// caches reads coherently (an rcds.Client with its watch-invalidated
// read cache), the resolver's TTL cache is disabled and resolution
// rides the client cache instead — invalidation is then push-based
// (Wait sequence numbers) rather than timer-based.
func NewResolver(cat Catalog) *Resolver {
	r := &Resolver{cat: cat, ttl: 150 * time.Millisecond, cache: make(map[string]cacheEntry)}
	if cc, ok := cat.(interface{ ReadCacheActive() bool }); ok && cc.ReadCacheActive() {
		r.ttl = 0
	}
	return r
}

// SetTTL adjusts the cache lifetime.
func (r *Resolver) SetTTL(d time.Duration) {
	r.mu.Lock()
	r.ttl = d
	r.mu.Unlock()
}

// Resolve implements comm.Resolver: it reads the destination's
// AttrCommAddr assertions and parses them into routes.
func (r *Resolver) Resolve(urn string) ([]comm.Route, error) {
	r.mu.Lock()
	ttl := r.ttl
	if e, ok := r.cache[urn]; ok && ttl > 0 && time.Now().Before(e.expires) {
		routes := e.routes
		r.mu.Unlock()
		return routes, nil
	}
	r.mu.Unlock()

	vals, err := r.cat.Values(urn, rcds.AttrCommAddr)
	if err != nil {
		return nil, fmt.Errorf("naming: resolving %s: %w", urn, err)
	}
	routes := make([]comm.Route, 0, len(vals))
	for _, v := range vals {
		route, err := comm.ParseRoute(v)
		if err != nil {
			continue // tolerate foreign address formats in open metadata
		}
		routes = append(routes, route)
	}
	if ttl > 0 {
		r.mu.Lock()
		r.cache[urn] = cacheEntry{routes: routes, expires: time.Now().Add(ttl)}
		r.mu.Unlock()
	}
	return routes, nil
}

// Invalidate drops a cached entry (after a known migration).
func (r *Resolver) Invalidate(urn string) {
	r.mu.Lock()
	delete(r.cache, urn)
	r.mu.Unlock()
}

// Register publishes an endpoint's routes as the URN's communication
// addresses, making the process globally visible (§5.5).
func Register(cat Catalog, urn string, routes []comm.Route) error {
	for _, route := range routes {
		if err := cat.Add(urn, rcds.AttrCommAddr, route.String()); err != nil {
			return fmt.Errorf("naming: registering %s: %w", urn, err)
		}
	}
	return nil
}

// WithdrawRoute removes a single communication address — the metadata
// half of taking one interface out of service while the others keep
// carrying traffic. Peers re-resolving the URN stop seeing the route;
// sends already striped across it requeue their outstanding fragments
// onto the surviving routes (see internal/comm's stripe layer).
func WithdrawRoute(cat Catalog, urn string, route comm.Route) error {
	if err := cat.Remove(urn, rcds.AttrCommAddr, route.String()); err != nil {
		return fmt.Errorf("naming: withdrawing %s from %s: %w", route, urn, err)
	}
	return nil
}

// Unregister withdraws all of a URN's communication addresses — done
// at the start of a migration so new traffic buffers until the new
// location is published.
func Unregister(cat Catalog, urn string) error {
	if err := cat.RemoveAll(urn, rcds.AttrCommAddr); err != nil {
		return fmt.Errorf("naming: unregistering %s: %w", urn, err)
	}
	return nil
}
