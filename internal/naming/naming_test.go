package naming

import (
	"testing"
	"time"

	"snipe/internal/comm"
	"snipe/internal/rcds"
	"snipe/internal/testutil"
)

func TestNameConstructors(t *testing.T) {
	if got := ProcessURN("h1", "worker-1"); got != "urn:snipe:process:h1:worker-1" {
		t.Fatalf("ProcessURN = %q", got)
	}
	if got := HostURL("h1"); got != "snipe://hosts/h1" {
		t.Fatalf("HostURL = %q", got)
	}
	if got := GroupURN("g"); got != "urn:snipe:group:g" {
		t.Fatalf("GroupURN = %q", got)
	}
	if got := FileURN("f"); got != "urn:snipe:file:f" {
		t.Fatalf("FileURN = %q", got)
	}
	if got := ServiceURN("s"); got != "urn:snipe:service:s" {
		t.Fatalf("ServiceURN = %q", got)
	}
}

func TestRegisterResolveUnregister(t *testing.T) {
	store := rcds.NewStore("s1")
	cat := StoreCatalog(store)
	r := NewResolver(cat)
	r.SetTTL(time.Millisecond)

	routes := []comm.Route{
		{Transport: "tcp", Addr: "127.0.0.1:1000"},
		{Transport: "rudp", Addr: "127.0.0.1:1001", NetName: "lan"},
	}
	if err := Register(cat, "urn:p1", routes); err != nil {
		t.Fatal(err)
	}
	got, err := r.Resolve("urn:p1")
	if err != nil || len(got) != 2 {
		t.Fatalf("Resolve = %v, %v", got, err)
	}
	if err := Unregister(cat, "urn:p1"); err != nil {
		t.Fatal(err)
	}
	// The resolver cache expires on its TTL; poll until it does.
	testutil.WaitFor(t, time.Second, func() bool {
		got, err = r.Resolve("urn:p1")
		return err == nil && len(got) == 0
	}, "unregistered name still resolves after the cache TTL")
}

func TestWithdrawRoute(t *testing.T) {
	store := rcds.NewStore("s1")
	cat := StoreCatalog(store)
	r := NewResolver(cat)
	r.SetTTL(0)

	routes := []comm.Route{
		{Transport: "tcp", Addr: "127.0.0.1:1000", NetName: "eth"},
		{Transport: "tcp", Addr: "127.0.0.1:1001", NetName: "atm"},
	}
	if err := Register(cat, "urn:p1", routes); err != nil {
		t.Fatal(err)
	}
	if err := WithdrawRoute(cat, "urn:p1", routes[0]); err != nil {
		t.Fatal(err)
	}
	got, err := r.Resolve("urn:p1")
	if err != nil || len(got) != 1 || got[0] != routes[1] {
		t.Fatalf("after withdrawal: %v, %v", got, err)
	}
}

func TestResolverCache(t *testing.T) {
	store := rcds.NewStore("s1")
	cat := StoreCatalog(store)
	r := NewResolver(cat)
	r.SetTTL(time.Hour)

	Register(cat, "urn:p1", []comm.Route{{Transport: "tcp", Addr: "a:1"}})
	if got, _ := r.Resolve("urn:p1"); len(got) != 1 {
		t.Fatalf("first resolve: %v", got)
	}
	// Change the catalog; the cache hides it until invalidated.
	Unregister(cat, "urn:p1")
	if got, _ := r.Resolve("urn:p1"); len(got) != 1 {
		t.Fatalf("cached resolve: %v", got)
	}
	r.Invalidate("urn:p1")
	if got, _ := r.Resolve("urn:p1"); len(got) != 0 {
		t.Fatalf("after invalidate: %v", got)
	}
}

func TestResolverToleratesForeignAddressFormats(t *testing.T) {
	store := rcds.NewStore("s1")
	cat := StoreCatalog(store)
	cat.Add("urn:p1", rcds.AttrCommAddr, "not-a-route")
	cat.Add("urn:p1", rcds.AttrCommAddr, "tcp://127.0.0.1:5")
	r := NewResolver(cat)
	got, err := r.Resolve("urn:p1")
	if err != nil || len(got) != 1 || got[0].Addr != "127.0.0.1:5" {
		t.Fatalf("Resolve = %v, %v", got, err)
	}
}

func TestResolverSatisfiesCommResolver(t *testing.T) {
	var _ comm.Resolver = NewResolver(StoreCatalog(rcds.NewStore("x")))
}
