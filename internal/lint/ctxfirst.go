package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxfirstAPI lists the consolidated context-first method sets by
// receiver type name. PR 7 deleted the timeout-signature wrappers and
// renamed the *Context variants to these bare names; the analyzer keeps
// both regressions out: reintroducing a `<Name>Context` sibling, or
// declaring one of these names without a leading context.Context.
var ctxfirstAPI = map[string]map[string]bool{
	"Client": {
		"Ping": true, "Set": true, "Add": true, "AddSigned": true,
		"Remove": true, "RemoveAll": true, "Get": true, "Values": true,
		"FirstValue": true, "URIs": true, "Vector": true, "OpsSince": true,
		"Apply": true, "Wait": true, "Stats": true, "WaitFor": true,
	},
	"Endpoint": {
		"SendWait": true, "Recv": true, "RecvMatch": true,
	},
}

// ctxfirstScope reports whether a receiver package is one the API
// contract covers. The lintfixture prefix admits the linttest fixture
// packages, which declare lookalike Client/Endpoint types to exercise
// the analyzer (real methods on rcds.Client/comm.Endpoint can only be
// declared inside their own packages).
func ctxfirstScope(pkgPath string) bool {
	return pkgPath == "snipe/internal/rcds" ||
		pkgPath == "snipe/internal/comm" ||
		strings.HasPrefix(pkgPath, "snipe/lintfixture/")
}

// ctxfirstRecv resolves a method's receiver to an in-scope API type
// name, or "" when the method is outside the contract.
func ctxfirstRecv(f *types.Func) string {
	pkgPath, typ := recvNamed(f)
	if !ctxfirstScope(pkgPath) {
		return ""
	}
	if _, ok := ctxfirstAPI[typ]; !ok {
		return ""
	}
	return typ
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// NewCtxfirst returns the ctxfirst analyzer. The rcds.Client and
// comm.Endpoint request APIs are context-first: the bare names
// (Ping, Get, SendWait, Recv, ...) take a context.Context as their
// first parameter and there are no timeout-signature or *Context
// variants. The analyzer flags declarations that reintroduce either
// shape, and any surviving call to an old *Context name.
func NewCtxfirst() *Analyzer {
	a := &Analyzer{
		Name: "ctxfirst",
		Doc:  "enforces the context-first rcds.Client/comm.Endpoint API: no *Context variants, no context-less signatures",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv == nil {
					continue
				}
				f, ok := pass.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				typ := ctxfirstRecv(f)
				if typ == "" {
					continue
				}
				name := f.Name()
				if bare := strings.TrimSuffix(name, "Context"); bare != name && ctxfirstAPI[typ][bare] {
					pass.Reportf(fd.Name.Pos(),
						"%s.%s reintroduces a deprecated *Context name; the context-first API is %s(ctx, ...)",
						typ, name, bare)
					continue
				}
				if !ctxfirstAPI[typ][name] {
					continue
				}
				sig := f.Type().(*types.Signature)
				if sig.Params().Len() == 0 || !isContextType(sig.Params().At(0).Type()) {
					pass.Reportf(fd.Name.Pos(),
						"%s.%s must take a context.Context as its first parameter",
						typ, name)
				}
			}
			// Calls to a *Context name reaching an in-scope receiver can
			// only exist alongside a flagged declaration, but report them
			// too so callers in other packages surface under lint as well.
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(pass.Info, call)
				if f == nil {
					return true
				}
				typ := ctxfirstRecv(f)
				if typ == "" {
					return true
				}
				name := f.Name()
				if bare := strings.TrimSuffix(name, "Context"); bare != name && ctxfirstAPI[typ][bare] {
					pass.Reportf(call.Pos(),
						"call to deprecated %s.%s; use %s(ctx, ...)", typ, name, bare)
				}
				return true
			})
		}
		return nil
	}
	return a
}
