package lint

import (
	"go/ast"
	"go/types"
)

// ctxfirstDeprecated maps the deprecated timeout-signature wrappers to
// their context-first replacements. Keys are pkgpath.Type.Method.
// (comm.Endpoint's wrappers — SendWait, Recv, RecvMatch, Stats — were
// deleted outright once this analyzer had barred new callers; only the
// rcds.Client shims remain.)
var ctxfirstDeprecated = map[string]string{
	"snipe/internal/rcds.Client.Ping":       "PingContext",
	"snipe/internal/rcds.Client.Set":        "SetContext",
	"snipe/internal/rcds.Client.Add":        "AddContext",
	"snipe/internal/rcds.Client.AddSigned":  "AddSignedContext",
	"snipe/internal/rcds.Client.Remove":     "RemoveContext",
	"snipe/internal/rcds.Client.RemoveAll":  "RemoveAllContext",
	"snipe/internal/rcds.Client.Get":        "GetContext",
	"snipe/internal/rcds.Client.Values":     "ValuesContext",
	"snipe/internal/rcds.Client.FirstValue": "FirstValueContext",
	"snipe/internal/rcds.Client.URIs":       "URIsContext",
	"snipe/internal/rcds.Client.Vector":     "VectorContext",
	"snipe/internal/rcds.Client.OpsSince":   "OpsSinceContext",
	"snipe/internal/rcds.Client.Apply":      "ApplyContext",
	"snipe/internal/rcds.Client.Wait":       "WaitContext",
	"snipe/internal/rcds.Client.Stats":      "StatsContext",
	"snipe/internal/rcds.Client.WaitFor":    "WaitForContext",
}

// NewCtxfirst returns the ctxfirst analyzer: production code must use
// the context-first APIs; the deprecated timeout-signature wrappers are
// reserved for _test.go files and for the wrappers themselves.
func NewCtxfirst() *Analyzer {
	a := &Analyzer{
		Name: "ctxfirst",
		Doc:  "forbids calls to deprecated timeout-signature comm/rcds APIs outside tests",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(pass.Info, call)
				if f == nil {
					return true
				}
				repl, ok := ctxfirstDeprecated[methodKey(f)]
				if !ok {
					return true
				}
				// Deprecated wrappers may call their siblings.
				if enclosingFuncDeprecated(pass.Files, call.Pos()) {
					return true
				}
				pass.Reportf(call.Pos(), "call to deprecated %s.%s; use %s",
					recvName(f), f.Name(), repl)
				return true
			})
		}
		return nil
	}
	return a
}

// recvName renders a method's receiver type name for diagnostics.
func recvName(f *types.Func) string {
	_, typ := recvNamed(f)
	if typ == "" {
		return "?"
	}
	return typ
}
