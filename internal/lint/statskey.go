package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// statskeyPattern is the metric naming convention: lower_snake_case,
// starting with a letter.
var statskeyPattern = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// statskeyConstructors are the Registry entry points whose first
// argument is a metric name.
var statskeyConstructors = map[string]bool{
	"snipe/internal/stats.Registry.Counter":   true,
	"snipe/internal/stats.Registry.Gauge":     true,
	"snipe/internal/stats.Registry.Histogram": true,
}

// statskeyMinLevLen is the minimum name length for the edit-distance
// check; very short names ("load", "uris") are too close to each other
// by nature.
const statskeyMinLevLen = 5

// NewStatskey returns the statskey analyzer. Per package it checks that
// metric names passed to stats.Registry constructors are literal and
// conform to the naming convention; across the whole run it flags
// near-duplicate names (edit distance 1, or equal after normalizing
// case and separators) — the typo class that silently splits one
// logical metric into two series.
func NewStatskey() *Analyzer {
	a := &Analyzer{
		Name: "statskey",
		Doc:  "checks stats metric-name literals for convention and typo'd near-duplicates",
	}
	type occurrence struct {
		pos   token.Pos
		where string // pre-formatted position, for cross-package messages
	}
	seen := map[string][]occurrence{} // name -> occurrences, whole run
	a.Run = func(pass *Pass) error {
		if pass.Pkg.Path() == "snipe/internal/stats" {
			return nil
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(pass.Info, call)
				if f == nil || !statskeyConstructors[methodKey(f)] || len(call.Args) == 0 {
					return true
				}
				arg := call.Args[0]
				tv, ok := pass.Info.Types[arg]
				if !ok || tv.Value == nil {
					pass.Reportf(arg.Pos(),
						"metric name is not a constant string; statskey cannot cross-check dynamic names")
					return true
				}
				name, err := strconv.Unquote(tv.Value.ExactString())
				if err != nil {
					return true
				}
				if !statskeyPattern.MatchString(name) {
					pass.Reportf(arg.Pos(),
						"metric name %q does not match convention %s", name, statskeyPattern)
				}
				seen[name] = append(seen[name], occurrence{
					pos:   arg.Pos(),
					where: pass.Fset.Position(arg.Pos()).String(),
				})
				return true
			})
		}
		return nil
	}
	a.Finish = func(report func(pos token.Pos, format string, args ...any)) error {
		names := make([]string, 0, len(seen))
		for n := range seen {
			names = append(names, n)
		}
		sort.Strings(names)
		for i, n1 := range names {
			for _, n2 := range names[i+1:] {
				if !statskeyNearDup(n1, n2) {
					continue
				}
				// Report at the later-sorted name's first use, naming both.
				report(seen[n2][0].pos,
					"metric name %q is a near-duplicate of %q (declared at %s); one of them is likely a typo",
					n2, n1, seen[n1][0].where)
			}
		}
		return nil
	}
	return a
}

// statskeyNormalize strips separators and case so that "cacheHits",
// "cache_hits" and "CACHE_HITS" collide.
func statskeyNormalize(s string) string {
	return strings.ToLower(strings.ReplaceAll(s, "_", ""))
}

// statskeyNearDup reports whether two distinct metric names are
// suspiciously close.
func statskeyNearDup(a, b string) bool {
	if a == b {
		return false
	}
	if statskeyNormalize(a) == statskeyNormalize(b) {
		return true
	}
	if len(a) < statskeyMinLevLen || len(b) < statskeyMinLevLen {
		return false
	}
	return levenshtein(a, b) <= 1
}

// levenshtein is the standard edit distance, early-exited for the
// short strings metric names are.
func levenshtein(a, b string) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	prev := make([]int, len(a)+1)
	cur := make([]int, len(a)+1)
	for i := range prev {
		prev[i] = i
	}
	for j := 1; j <= len(b); j++ {
		cur[0] = j
		for i := 1; i <= len(a); i++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[i] = min(prev[i]+1, min(cur[i-1]+1, prev[i-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(a)]
}
