package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked target package.
type Package struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

const listFields = "Dir,ImportPath,Name,Export,Standard,DepOnly,GoFiles,Module,Error"

// goList invokes `go list -export -deps -json` in dir for patterns and
// decodes the JSON stream.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=" + listFields}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %w", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the export-data resolver the gc importer uses for
// every import of a package under analysis.
func exportLookup(pkgs []listPkg) func(path string) (io.ReadCloser, error) {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
}

// ExportLookupFor builds an export-data resolver for the module at dir
// covering the dependency closure of patterns. It exists for callers
// that type-check sources go list cannot see — the linttest fixture
// runner, whose fixtures live under testdata.
func ExportLookupFor(dir string, patterns []string) (func(path string) (io.ReadCloser, error), error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	return exportLookup(pkgs), nil
}

// NewInfo returns a types.Info with every map the analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Load type-checks the packages matching patterns (resolved relative to
// dir, which must lie in a module). Dependencies are resolved from
// compiler export data produced by `go list -export`, so loading does
// not re-type-check the transitive closure. Only non-test Go files are
// loaded; the suite's checks exempt _test.go files by construction.
func Load(fset *token.FileSet, dir string, patterns []string) ([]*Package, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	imp := importer.ForCompiler(fset, "gc", exportLookup(pkgs))

	var out []*Package
	for _, p := range pkgs {
		if p.Standard || p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, err)
		}
		out = append(out, &Package{Path: p.ImportPath, Files: files, Pkg: tpkg, Info: info})
	}
	return out, nil
}
