package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked target package. TestFiles marks
// the files that came from TestGoFiles when the load included tests.
type Package struct {
	Path      string
	Files     []*ast.File
	Pkg       *types.Package
	Info      *types.Info
	TestFiles map[*ast.File]bool
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir         string
	ImportPath  string
	Name        string
	Export      string
	Standard    bool
	DepOnly     bool
	GoFiles     []string
	TestGoFiles []string
	ForTest     string
	Module      *struct{ Path string }
	Error       *struct{ Err string }
}

const listFields = "Dir,ImportPath,Name,Export,Standard,DepOnly,GoFiles,TestGoFiles,ForTest,Module,Error"

// goList invokes `go list -export -deps -json` in dir for patterns and
// decodes the JSON stream. withTests adds -test so the dependency
// closure (and export data) covers test-only imports.
func goList(dir string, patterns []string, withTests bool) ([]listPkg, error) {
	args := []string{"list", "-e", "-export", "-deps"}
	if withTests {
		args = append(args, "-test")
	}
	args = append(args, "-json="+listFields)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %w", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the export-data resolver the gc importer uses for
// every import of a package under analysis.
func exportLookup(pkgs []listPkg) func(path string) (io.ReadCloser, error) {
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
}

// ExportLookupFor builds an export-data resolver for the module at dir
// covering the dependency closure of patterns. It exists for callers
// that type-check sources go list cannot see — the linttest fixture
// runner, whose fixtures live under testdata.
func ExportLookupFor(dir string, patterns []string) (func(path string) (io.ReadCloser, error), error) {
	pkgs, err := goList(dir, patterns, false)
	if err != nil {
		return nil, err
	}
	return exportLookup(pkgs), nil
}

// NewInfo returns a types.Info with every map the analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
}

// Load type-checks the packages matching patterns (resolved relative to
// dir, which must lie in a module). Dependencies are resolved from
// compiler export data produced by `go list -export`, so loading does
// not re-type-check the transitive closure. Only non-test Go files are
// loaded; the suite's checks exempt _test.go files by construction.
func Load(fset *token.FileSet, dir string, patterns []string) ([]*Package, error) {
	return load(fset, dir, patterns, false)
}

// LoadWithTests is Load plus each target's in-package _test.go files,
// type-checked together with the package proper (so test helpers see
// unexported identifiers exactly as the compiler does). External
// _test packages (package foo_test) are not loaded: they import the
// package under test, which would force re-type-checking the target
// against its own export data — and the suite's test-aware analyzer
// (goroutinelife) cares about goroutines spawned by helpers, which
// live in-package in this tree.
func LoadWithTests(fset *token.FileSet, dir string, patterns []string) ([]*Package, error) {
	return load(fset, dir, patterns, true)
}

func load(fset *token.FileSet, dir string, patterns []string, withTests bool) ([]*Package, error) {
	pkgs, err := goList(dir, patterns, withTests)
	if err != nil {
		return nil, err
	}
	imp := importer.ForCompiler(fset, "gc", exportLookup(pkgs))

	var out []*Package
	for _, p := range pkgs {
		if p.Standard || p.DepOnly {
			continue
		}
		// `go list -test` also emits the synthesized test packages
		// ("pkg.test", "pkg [pkg.test]", "pkg_test [pkg.test]"); the
		// base entry already names TestGoFiles, so skip the variants.
		if p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		testFiles := make(map[*ast.File]bool)
		parse := func(names []string, test bool) error {
			for _, name := range names {
				f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
				if err != nil {
					return err
				}
				files = append(files, f)
				if test {
					testFiles[f] = true
				}
			}
			return nil
		}
		if err := parse(p.GoFiles, false); err != nil {
			return nil, err
		}
		if withTests {
			if err := parse(p.TestGoFiles, true); err != nil {
				return nil, err
			}
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", p.ImportPath, err)
		}
		out = append(out, &Package{Path: p.ImportPath, Files: files, Pkg: tpkg, Info: info, TestFiles: testFiles})
	}
	return out, nil
}
