package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

const allowSrc = `package p

func f() {
	_ = 1 //lint:allow demo
	_ = 2
	_ = 3 //lint:allow otherdemo this allowance never fires
	_ = 4 //lint:allow demo suppressed with a reason
	_ = 5 //lint:allow goroutinelife suppression outliving the code it excused
}
`

// TestSuppressionLifecycle checks the three lint:allow states in one
// pass: a well-formed allowance suppresses, a reason-less one is
// malformed (and suppresses nothing), and one that suppresses nothing
// is reported as stale.
func TestSuppressionLifecycle(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}

	demo := &Analyzer{Name: "demo", Doc: "reports every assignment"}
	demo.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok {
					pass.Reportf(as.Pos(), "assignment")
				}
				return true
			})
		}
		return nil
	}

	s := NewSuite(fset, []*Analyzer{demo})
	if err := s.RunPackage([]*ast.File{f}, pkg, info); err != nil {
		t.Fatal(err)
	}
	if err := s.Finish(); err != nil {
		t.Fatal(err)
	}

	type want struct {
		analyzer string
		line     int
		contains string
	}
	wants := []want{
		{"demo", 4, "assignment"},     // malformed (reason-less) allow does not suppress
		{"lintallow", 4, "malformed"}, // ... and is itself a finding
		{"demo", 5, "assignment"},     // a malformed allow does not cover the next line either
		{"demo", 6, "assignment"},     // allow naming a different analyzer does not suppress
		{"lintallow", 6, "unused suppression"},
		// Stale-allow reporting is analyzer-agnostic: an allowance naming
		// a suite analyzer (goroutinelife) that suppresses nothing is
		// stale like any other. (Line 8's demo finding itself is covered
		// by line 7's well-formed demo allowance reaching the next line.)
		{"lintallow", 8, "unused suppression for goroutinelife"},
	}
	if len(s.Diags) != len(wants) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(s.Diags), len(wants), s.Diags)
	}
	for _, w := range wants {
		found := false
		for _, d := range s.Diags {
			if d.Analyzer == w.analyzer && d.Pos.Line == w.line && strings.Contains(d.Message, w.contains) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic %s line %d containing %q; got:\n%v", w.analyzer, w.line, w.contains, s.Diags)
		}
	}
	// Line 7's diagnostic must have been suppressed by the well-formed
	// same-line allowance.
	for _, d := range s.Diags {
		if d.Pos.Line == 7 {
			t.Errorf("suppressed diagnostic leaked: %v", d)
		}
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		d    int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "abd", 1},
		{"abc", "ab", 1},
		{"kitten", "sitting", 3},
		{"send_total", "send_totol", 1},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b); got != c.d {
			t.Errorf("levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.d)
		}
	}
}
