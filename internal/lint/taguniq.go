package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// taguniq is the wire-discriminant registry check: every constant that
// discriminates a wire format — comm frame types, SNIPE message tags,
// stream frame kinds, rcds response status tags, fileserv ops, mcast
// envelope kinds — must be unique within its space, and must never
// reuse a value that was retired from that space. Two constants with
// one value make a decoder take the wrong arm; reusing a retired value
// makes a new-version frame parse as the old meaning on a peer that
// has not upgraded, which is exactly the silent mixed-version collision
// the batched-ack frames were designed to avoid.
//
// Retiring a discriminant: delete the constant, then add its value to
// the space's retired map below with a note naming what it meant. The
// value is then tombstoned forever.

// taguniqSpace declares one discriminant namespace: which constants
// belong to it (by defining package and name pattern) and which values
// are retired.
type taguniqSpace struct {
	name    string
	member  func(pkgPath, constName string) bool
	retired map[int64]string // value → what it used to mean
}

func taguniqIn(pkgPath, pattern string) func(string, string) bool {
	re := regexp.MustCompile(pattern)
	return func(pkg, name string) bool { return pkg == pkgPath && re.MatchString(name) }
}

var taguniqTagName = regexp.MustCompile(`^Tag[A-Z]`)

// taguniqSpaces is the registry. No space has retired values yet; the
// maps are the tombstone mechanism (exercised by the fixture corpus).
func taguniqSpaces() []*taguniqSpace {
	return []*taguniqSpace{
		{
			name:    "comm frame type",
			member:  taguniqIn("snipe/internal/comm", `^frame[A-Z]`),
			retired: map[int64]string{},
		},
		{
			name:    "comm stream frame kind",
			member:  taguniqIn("snipe/internal/comm", `^stream[A-Z]`),
			retired: map[int64]string{},
		},
		{
			// The SNIPE message-tag space: the system tags every daemon
			// protocol rides (task.Tag*), plus comm's reserved tags
			// (AnyTag sentinel, StreamTag for the stream mux).
			name: "message tag",
			member: func(pkg, name string) bool {
				if pkg == "snipe/internal/task" {
					return taguniqTagName.MatchString(name)
				}
				if pkg == "snipe/internal/comm" {
					return name == "AnyTag" || name == "StreamTag"
				}
				return false
			},
			retired: map[int64]string{},
		},
		{
			name:    "rcds response status tag",
			member:  taguniqIn("snipe/internal/rcds", `^status[A-Z]`),
			retired: map[int64]string{},
		},
		{
			name:    "rcds command tag",
			member:  taguniqIn("snipe/internal/rcds", `^cmd[A-Z]`),
			retired: map[int64]string{},
		},
		{
			name:    "rcds catch-up mode tag",
			member:  taguniqIn("snipe/internal/rcds", `^catchupMode[A-Z]`),
			retired: map[int64]string{},
		},
		{
			name:    "fileserv op",
			member:  taguniqIn("snipe/internal/fileserv", `^op[A-Z]`),
			retired: map[int64]string{},
		},
		{
			name:    "mcast envelope kind",
			member:  taguniqIn("snipe/internal/mcast", `^k[A-Z]`),
			retired: map[int64]string{},
		},
		{
			// The gossip datagram kinds riding task.TagGossip (the tag
			// itself lives in the message-tag space above).
			name:    "gossip message kind",
			member:  taguniqIn("snipe/internal/gossip", `^kind[A-Z]`),
			retired: map[int64]string{},
		},
		{
			// Fixture space, so the corpus can exercise a collision and
			// a retired-value reuse without touching real registries.
			name:    "fixture tag",
			member:  taguniqIn("snipe/lintfixture/taguniq", `^tag[A-Z]`),
			retired: map[int64]string{9: "tagLegacyPing, retired when the ping op moved to tagEcho"},
		},
	}
}

// taguniqConst is one collected discriminant.
type taguniqConst struct {
	name  string
	value int64
	pos   token.Pos
	where string
}

// NewTaguniq returns the taguniq analyzer: Run collects matching
// constants per package, Finish checks uniqueness and tombstones.
func NewTaguniq() *Analyzer {
	a := &Analyzer{
		Name: "taguniq",
		Doc:  "checks wire discriminants for uniqueness within their space and against retired values",
	}
	spaces := taguniqSpaces()
	collected := make(map[*taguniqSpace][]taguniqConst)
	a.Run = func(pass *Pass) error {
		pkgPath := pass.Pkg.Path()
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, nameID := range vs.Names {
						cnst, ok := pass.Info.Defs[nameID].(*types.Const)
						if !ok {
							continue
						}
						val, exact := constant.Int64Val(constant.ToInt(cnst.Val()))
						if !exact {
							// A uint64-range sentinel still identifies a
							// slot; fold it into int64 space for comparison.
							if u, uexact := constant.Uint64Val(constant.ToInt(cnst.Val())); uexact {
								val = int64(u)
							} else {
								continue
							}
						}
						for _, sp := range spaces {
							if sp.member(pkgPath, nameID.Name) {
								collected[sp] = append(collected[sp], taguniqConst{
									name:  nameID.Name,
									value: val,
									pos:   nameID.Pos(),
									where: pass.Fset.Position(nameID.Pos()).String(),
								})
							}
						}
					}
				}
			}
		}
		return nil
	}
	a.Finish = func(report func(pos token.Pos, format string, args ...any)) error {
		for _, sp := range spaces {
			consts := collected[sp]
			sort.Slice(consts, func(i, j int) bool { return consts[i].pos < consts[j].pos })
			byValue := map[int64][]taguniqConst{}
			for _, c := range consts {
				byValue[c.value] = append(byValue[c.value], c)
			}
			values := make([]int64, 0, len(byValue))
			for v := range byValue {
				values = append(values, v)
			}
			sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
			for _, v := range values {
				group := byValue[v]
				if len(group) > 1 {
					for _, c := range group[1:] {
						report(c.pos,
							"%s %s = %d collides with %s (declared at %s); %s discriminants must be unique",
							sp.name, c.name, v, group[0].name, group[0].where, sp.name)
					}
				}
				if note, ok := sp.retired[v]; ok {
					for _, c := range group {
						report(c.pos,
							"%s %s reuses retired value %d (%s); retired wire values are tombstoned forever — pick a fresh one",
							sp.name, c.name, v, note)
					}
				}
			}
		}
		return nil
	}
	return a
}
