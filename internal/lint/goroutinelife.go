package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// goroutinelife checks that goroutines spawned in library code have a
// bounded lifetime: a `go` statement whose body can block forever with
// no escape hatch outlives its owner, accumulates under churn, and is
// exactly the leak class the runtime checker in internal/testutil
// catches only when a test happens to hit it. The static rule:
//
//   - a goroutine containing an unbounded loop (`for { ... }` or
//     `for true { ... }`) must carry a lifetime signal somewhere in its
//     body: a receive from a ctx.Done()-style channel or a chan
//     struct{} done-channel (close broadcasts), a range over a channel
//     (bounded by close), or a receive/select on a channel whose name
//     says lifecycle (done/quit/stop/close/shutdown);
//   - a goroutine performing a bare blocking channel operation outside
//     any select — `ch <- v` or `<-ch` on an unbuffered or unknowable
//     channel — with no lifetime signal is flagged too: if the peer
//     goroutine dies first, this one blocks forever. Sends to channels
//     whose visible creation is a buffered make are exempt — the buffer
//     is the escape hatch. (In _test.go files only the unbounded-loop
//     rule applies; test goroutines routinely hand one value to a
//     receiver the test guarantees.)
//
// Intentional forever-goroutines (process-lifetime singletons) carry a
// `//lint:allow goroutinelife <reason>` on the `go` statement.
//
// The analyzer resolves `go f()` to the body of f when f is declared in
// the same package; cross-package spawn helpers are out of scope.

// NewGoroutinelife returns the goroutinelife analyzer.
func NewGoroutinelife() *Analyzer {
	a := &Analyzer{
		Name:  "goroutinelife",
		Doc:   "flags library goroutines that can block forever with no ctx/done/close escape",
		Tests: true,
	}
	a.Run = runGoroutinelife
	return a
}

func runGoroutinelife(pass *Pass) error {
	// Goroutines in package main are process-lifetime by definition.
	if pass.Pkg.Name() == "main" {
		return nil
	}
	// Index same-package function declarations for `go f()` resolution.
	decls := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	buffered := goroutineBuffered(pass.Info, pass.Files)
	for _, file := range pass.Files {
		testFile := pass.IsTest(file)
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			switch fun := ast.Unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				body = fun.Body
			case *ast.Ident:
				if fd := decls[pass.Info.Uses[fun]]; fd != nil {
					body = fd.Body
				}
			}
			if body == nil {
				return true
			}
			g := goroutineScan(pass.Info, body, buffered)
			if g.signal {
				return true
			}
			if g.loopPos.IsValid() {
				pass.Reportf(gs.Pos(),
					"goroutine loops forever with no lifetime signal; select on a ctx.Done()/close(done) channel or bound the loop")
				return true
			}
			if !testFile && g.blockPos.IsValid() {
				pass.Reportf(gs.Pos(),
					"goroutine blocks on a bare channel %s with no lifetime signal; if the peer goroutine is gone it blocks forever — use a select with a done case or a buffered channel",
					g.blockKind)
			}
			return true
		})
	}
	return nil
}

// goroutineFacts is what one goroutine body exhibits.
type goroutineFacts struct {
	signal    bool // has a lifetime escape: done-receive, channel range, …
	loopPos   token.Pos
	blockPos  token.Pos
	blockKind string // "send" or "receive"
}

// goroutineScan inspects body (including nested non-go function
// literals — a helper closure invoked by the goroutine runs on it) for
// signals and hazards. Nested `go` statements are separate goroutines
// and are skipped; they are visited by runGoroutinelife on their own.
func goroutineScan(info *types.Info, body *ast.BlockStmt, buffered map[types.Object]bool) goroutineFacts {
	var g goroutineFacts
	var inSelect []ast.Node // enclosing select statements
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			inSelect = append(inSelect, n)
			for _, c := range n.Body.List {
				ast.Inspect(c, walk)
			}
			inSelect = inSelect[:len(inSelect)-1]
			return false
		case *ast.ForStmt:
			if n.Cond == nil || isTrueLiteral(info, n.Cond) {
				if !g.loopPos.IsValid() {
					g.loopPos = n.Pos()
				}
			}
		case *ast.RangeStmt:
			if _, ok := info.TypeOf(n.X).Underlying().(*types.Chan); ok {
				g.signal = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if recvIsSignal(info, n.X) {
					g.signal = true
				} else if len(inSelect) == 0 && !g.blockPos.IsValid() {
					g.blockPos = n.Pos()
					g.blockKind = "receive"
				}
			}
		case *ast.SendStmt:
			if ch, ok := ast.Unparen(n.Chan).(*ast.Ident); ok && buffered[info.Uses[ch]] {
				break
			}
			if len(inSelect) == 0 && !g.blockPos.IsValid() {
				g.blockPos = n.Pos()
				g.blockKind = "send"
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return g
}

// recvIsSignal reports whether receiving from e is a lifetime signal:
// a ctx.Done()-shaped call, a chan struct{} (close broadcasts to every
// receiver, so a receive cannot outlive its owner's shutdown), or a
// channel whose name declares lifecycle intent.
func recvIsSignal(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	}
	if t := info.TypeOf(e); t != nil {
		if ch, ok := t.Underlying().(*types.Chan); ok {
			if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true
			}
		}
	}
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	}
	name = strings.ToLower(name)
	for _, hint := range []string{"done", "quit", "stop", "close", "closing", "shutdown", "exit"} {
		if strings.Contains(name, hint) {
			return true
		}
	}
	return false
}

// goroutineBuffered indexes channel variables whose visible creation is
// a buffered make — `ch := make(chan T, n)` with n not constant zero.
// A send to one cannot block while the buffer has room, which is
// exactly the escape hatch the bare-send rule asks for (result channels
// sized to their producer count).
func goroutineBuffered(info *types.Info, files []*ast.File) map[types.Object]bool {
	out := map[types.Object]bool{}
	mark := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "make" {
			return
		}
		if _, isBuiltin := info.Uses[fn].(*types.Builtin); !isBuiltin {
			return
		}
		if t := info.TypeOf(call); t == nil {
			return
		} else if _, ok := t.Underlying().(*types.Chan); !ok {
			return
		}
		if tv, ok := info.Types[call.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			out[obj] = true
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						mark(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						mark(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
	return out
}

// isTrueLiteral reports whether cond is the constant true.
func isTrueLiteral(info *types.Info, cond ast.Expr) bool {
	tv, ok := info.Types[cond]
	return ok && tv.Value != nil && tv.Value.String() == "true"
}
