package lint_test

import (
	"testing"

	"snipe/internal/lint"
	"snipe/internal/lint/linttest"
)

func TestCtxfirst(t *testing.T) { linttest.Run(t, "testdata/ctxfirst", lint.NewCtxfirst()) }

func TestLockedio(t *testing.T) { linttest.Run(t, "testdata/lockedio", lint.NewLockedio()) }

func TestXdrbound(t *testing.T) { linttest.Run(t, "testdata/xdrbound", lint.NewXdrbound()) }

func TestStatskey(t *testing.T) { linttest.Run(t, "testdata/statskey", lint.NewStatskey()) }

func TestLockorder(t *testing.T) { linttest.Run(t, "testdata/lockorder", lint.NewLockorder()) }

func TestCtxleak(t *testing.T) { linttest.Run(t, "testdata/ctxleak", lint.NewCtxleak()) }

// TestGoroutinelife covers both fixture files: the analyzer has Tests
// set, so fixture_test.go exercises the test-file relaxation of the
// bare-channel rule.
func TestGoroutinelife(t *testing.T) {
	linttest.Run(t, "testdata/goroutinelife", lint.NewGoroutinelife())
}

func TestTaguniq(t *testing.T) { linttest.Run(t, "testdata/taguniq", lint.NewTaguniq()) }

// TestLintAllow runs xdrbound over a fixture whose every violation is
// suppressed; the fixture therefore wants zero diagnostics, and any
// leak-through fails as an unexpected diagnostic.
func TestLintAllow(t *testing.T) { linttest.Run(t, "testdata/lintallow", lint.NewXdrbound()) }
