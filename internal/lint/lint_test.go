package lint_test

import (
	"testing"

	"snipe/internal/lint"
	"snipe/internal/lint/linttest"
)

func TestCtxfirst(t *testing.T) { linttest.Run(t, "testdata/ctxfirst", lint.NewCtxfirst()) }

func TestLockedio(t *testing.T) { linttest.Run(t, "testdata/lockedio", lint.NewLockedio()) }

func TestXdrbound(t *testing.T) { linttest.Run(t, "testdata/xdrbound", lint.NewXdrbound()) }

func TestStatskey(t *testing.T) { linttest.Run(t, "testdata/statskey", lint.NewStatskey()) }

// TestLintAllow runs xdrbound over a fixture whose every violation is
// suppressed; the fixture therefore wants zero diagnostics, and any
// leak-through fails as an unexpected diagnostic.
func TestLintAllow(t *testing.T) { linttest.Run(t, "testdata/lintallow", lint.NewXdrbound()) }
