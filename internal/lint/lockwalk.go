package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockwalk is the shared flow-sensitive mutex interpreter behind
// lockedio and lockorder. It walks each function body in statement
// order, tracking which sync.Mutex/RWMutex values are held — locked via
// x.Lock()/x.RLock(), released via x.Unlock()/x.RUnlock(); a deferred
// Unlock keeps the mutex held to the end of the function — and invokes
// analyzer callbacks at acquisition sites and at every other call.
// Branch bodies get copies of the held set so branch-local locks do not
// leak into the fallthrough path. Function literals are walked as
// separate functions with no locks held, so goroutines spawned under a
// lock are not false positives.

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

// lockSite records where and what a held mutex is. key is the source
// expression of the receiver ("e.mu"), distinguishing instances inside
// one function; field is the resolved struct-field identity
// ("pkgpath.Type.field"), or "" when the mutex is not a named struct
// field — the granularity lock-order edges are built on.
type lockSite struct {
	pos   token.Pos
	key   string
	field string
}

type lockWalker struct {
	info *types.Info
	// onAcquire, if set, fires when a Lock/RLock is taken while held
	// (possibly empty) is the set of already-held mutexes.
	onAcquire func(site lockSite, held map[string]lockSite)
	// onCall, if set, fires for every non-mutex-op call expression with
	// the currently held set.
	onCall func(call *ast.CallExpr, held map[string]lockSite)
}

// walkFile walks every function declaration and function literal in f,
// each with a fresh (empty) held set.
func (lw *lockWalker) walkFile(f *ast.File) {
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
			lw.walkStmts(fd.Body.List, map[string]lockSite{})
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lw.walkStmts(fl.Body.List, map[string]lockSite{})
		}
		return true
	})
}

// walkStmts interprets stmts in order, mutating held; branch bodies get
// copies so branch-local locks do not leak into the fallthrough path.
func (lw *lockWalker) walkStmts(stmts []ast.Stmt, held map[string]lockSite) {
	for _, s := range stmts {
		lw.walkStmt(s, held)
	}
}

func copyHeld(held map[string]lockSite) map[string]lockSite {
	out := make(map[string]lockSite, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (lw *lockWalker) walkStmt(s ast.Stmt, held map[string]lockSite) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		lw.scanExpr(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex held for the rest of the
		// function, which is exactly the state we are tracking; other
		// deferred calls run at return, outside this frame's order.
		if _, kind := lw.lockOp(s.Call); kind == opNone {
			for _, arg := range s.Call.Args {
				lw.scanExpr(arg, held)
			}
		}
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			lw.scanExpr(arg, held)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lw.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			lw.scanExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lw.scanExpr(v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lw.scanExpr(e, held)
		}
	case *ast.SendStmt:
		lw.scanExpr(s.Chan, held)
		lw.scanExpr(s.Value, held)
	case *ast.IncDecStmt:
		lw.scanExpr(s.X, held)
	case *ast.LabeledStmt:
		lw.walkStmt(s.Stmt, held)
	case *ast.BlockStmt:
		lw.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			lw.walkStmt(s.Init, held)
		}
		lw.scanExpr(s.Cond, held)
		lw.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			lw.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lw.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			lw.scanExpr(s.Cond, held)
		}
		lw.walkStmts(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		lw.scanExpr(s.X, held)
		lw.walkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			lw.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			lw.scanExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lw.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lw.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				lw.walkStmts(cc.Body, copyHeld(held))
			}
		}
	}
}

// lockOp classifies a call as a mutex operation and resolves its
// receiver into a lockSite.
func (lw *lockWalker) lockOp(call *ast.CallExpr) (lockSite, lockOpKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockSite{}, opNone
	}
	f := calleeFunc(lw.info, call)
	if f == nil {
		return lockSite{}, opNone
	}
	pkg, typ := recvNamed(f)
	if pkg != "sync" || (typ != "Mutex" && typ != "RWMutex") {
		return lockSite{}, opNone
	}
	site := lockSite{
		pos:   call.Pos(),
		key:   types.ExprString(sel.X),
		field: mutexFieldKey(lw.info, sel.X),
	}
	switch f.Name() {
	case "Lock", "TryLock":
		return site, opLock
	case "RLock", "TryRLock":
		site.key += ":r"
		return site, opRLock
	case "Unlock":
		return site, opUnlock
	case "RUnlock":
		site.key += ":r"
		return site, opRUnlock
	}
	return lockSite{}, opNone
}

// mutexFieldKey resolves the mutex receiver expression to its struct
// field identity, "pkgpath.Type.field" — e.g. e.mu on *comm.Endpoint
// is "snipe/internal/comm.Endpoint.mu", and e.shards[i].mu is
// "snipe/internal/comm.sendShard.mu", because the field belongs to the
// element type. Locals, parameters and embedded promotions yield "".
func mutexFieldKey(info *types.Info, recv ast.Expr) string {
	sel, ok := ast.Unparen(recv).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name() + "." + sel.Sel.Name
}

// scanExpr looks for mutex operations and other calls inside one
// expression, in source order, updating held and firing callbacks.
func (lw *lockWalker) scanExpr(e ast.Expr, held map[string]lockSite) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // walked separately with a fresh frame
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch site, kind := lw.lockOp(call); kind {
		case opLock, opRLock:
			if lw.onAcquire != nil {
				lw.onAcquire(site, held)
			}
			held[site.key] = site
			return true
		case opUnlock, opRUnlock:
			delete(held, site.key)
			return true
		}
		if lw.onCall != nil {
			lw.onCall(call, held)
		}
		return true
	})
}
