// Package fixture exercises the lockedio analyzer.
package fixture

import (
	"net"
	"sync"

	"snipe/internal/comm"
)

type peer struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ep   *comm.Endpoint
	conn net.Conn
}

func (p *peer) sendUnderLock() {
	p.mu.Lock()
	_ = p.ep.Send("peer", 1, nil) // want `network I/O \(Send\) while holding p.mu`
	p.mu.Unlock()
}

func (p *peer) writeUnderDeferredUnlock(buf []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, _ = p.conn.Write(buf) // want `network I/O \(net.Conn.Write\) while holding p.mu`
}

func (p *peer) readUnderReadLock(buf []byte) {
	p.rw.RLock()
	_, _ = p.conn.Read(buf) // want `network I/O \(net.Conn.Read\) while holding p.rw \(read lock\)`
	p.rw.RUnlock()
}

func (p *peer) branchLocal(buf []byte) {
	if len(buf) > 0 {
		p.mu.Lock()
		_, _ = p.conn.Write(buf) // want `network I/O`
		p.mu.Unlock()
	}
	_, _ = p.conn.Write(buf) // clean: branch-local lock does not leak here
}

func (p *peer) releasedBeforeIO(buf []byte) {
	p.mu.Lock()
	n := len(buf)
	p.mu.Unlock()
	_ = p.ep.Send("peer", uint32(n), buf) // clean: lock released
}

func (p *peer) goroutineIsFreshFrame() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() {
		_ = p.ep.Send("peer", 1, nil) // clean: separate goroutine, lock not held there
	}()
}
