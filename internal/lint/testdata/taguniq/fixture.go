// Package fixture exercises the taguniq analyzer. The "fixture tag"
// space is declared in taguniqSpaces with value 9 retired
// (tagLegacyPing, replaced by tagEcho).
package fixture

const (
	tagHello = 1
	tagData  = 2
	tagAck   = 3
	tagEcho  = 10
	tagBulk  = 2 // want `fixture tag tagBulk = 2 collides with tagData`
	tagPing  = 9 // want `fixture tag tagPing reuses retired value 9`
)

// version is not a tag constant; it may share a value freely.
const version = 2
