// Package fixture exercises the lockorder analyzer. The Endpoint/shard
// types mirror comm.Endpoint's declared partial order
// (mu → connMu/cacheMu → shard.mu, see lockorderRanks), and the
// undeclared a/b pair exercises pure cycle detection.
package fixture

import "sync"

type shard struct {
	mu sync.Mutex
	n  int
}

type Endpoint struct {
	mu      sync.Mutex
	connMu  sync.Mutex
	cacheMu sync.Mutex
	shards  [4]shard
}

// descending follows the declared order: mu (tier 0) held while taking
// connMu (tier 1). Clean.
func (e *Endpoint) descending() {
	e.mu.Lock()
	e.connMu.Lock()
	e.connMu.Unlock()
	e.mu.Unlock()
}

// sameTier holds one tier-1 lock while taking another: the tiers are
// mutually unordered, so this is a violation.
func (e *Endpoint) sameTier() {
	e.cacheMu.Lock()
	e.connMu.Lock() // want `acquiring lockorder.Endpoint.connMu while holding lockorder.Endpoint.cacheMu .* violates the declared fixture.Endpoint lock order`
	e.connMu.Unlock()
	e.cacheMu.Unlock()
}

// inverted is the deliberate inversion of the acceptance criteria: a
// shard lock (innermost tier) held while acquiring cacheMu (an outer
// tier).
func (e *Endpoint) inverted(i int) {
	e.shards[i].mu.Lock()
	e.cacheMu.Lock() // want `acquiring lockorder.Endpoint.cacheMu while holding lockorder.shard.mu .* violates the declared fixture.Endpoint lock order`
	e.cacheMu.Unlock()
	e.shards[i].mu.Unlock()
}

// twoShards locks two instances of the same field: a self-edge, which
// is both a same-tier violation and a one-node cycle.
func (e *Endpoint) twoShards() {
	e.shards[0].mu.Lock()
	e.shards[1].mu.Lock() // want `violates the declared fixture.Endpoint lock order` `lock-order cycle: lockorder.shard.mu → lockorder.shard.mu`
	e.shards[1].mu.Unlock()
	e.shards[0].mu.Unlock()
}

// a and b are not in any declared order; the pair of functions below
// creates the cycle a.x → b.y → a.x, caught purely from the graph.
type a struct{ x sync.Mutex }

type b struct{ y sync.Mutex }

type pair struct {
	left  a
	right b
}

func (p *pair) leftThenRight() {
	p.left.x.Lock()
	p.right.y.Lock() // want `lock-order cycle: lockorder.a.x → lockorder.b.y → lockorder.a.x`
	p.right.y.Unlock()
	p.left.x.Unlock()
}

func (p *pair) rightThenLeft() {
	p.right.y.Lock()
	p.left.x.Lock() // want `lock-order cycle: lockorder.b.y → lockorder.a.x → lockorder.b.y`
	p.left.x.Unlock()
	p.right.y.Unlock()
}

// releasedBetween takes the locks sequentially, never nested. Clean.
func (p *pair) releasedBetween() {
	p.right.y.Lock()
	p.right.y.Unlock()
	p.left.x.Lock()
	p.left.x.Unlock()
}

// localMutex is not a named struct field; no edges are built on it.
func (e *Endpoint) localMutex() {
	var m sync.Mutex
	m.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	m.Unlock()
}
