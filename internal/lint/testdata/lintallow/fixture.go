// Package fixture exercises the //lint:allow suppression convention:
// a well-formed allowance on the flagged line or the line above
// silences exactly the named analyzer. No diagnostics are expected
// from this package at all.
package fixture

import "snipe/internal/xdr"

func allowed(d *xdr.Decoder) {
	_, _ = d.String() //lint:allow xdrbound trusted local pipe, length capped by the kernel

	//lint:allow xdrbound the line-above form also counts
	_, _ = d.Bytes()
}
