// A _test.go fixture: in test files the bare-channel hazard is relaxed
// (a test goroutine handing one value to a receiver the test guarantees
// is idiomatic), but the unbounded-loop rule still applies.
package fixture

// handOff performs a bare send; fine in a test file.
func handOff(ch chan int) {
	go func() {
		ch <- 42
	}()
}

// collect performs a bare receive; fine in a test file.
func collect(ch chan int) {
	go func() {
		<-ch
	}()
}

// testSpin still loops forever with no signal: flagged even in tests.
func testSpin(counter *int) {
	go func() { // want `goroutine loops forever with no lifetime signal`
		for {
			*counter++
		}
	}()
}
