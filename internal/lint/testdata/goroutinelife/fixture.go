// Package fixture exercises the goroutinelife analyzer: library
// goroutines must carry a lifetime signal or be provably bounded.
package fixture

import "context"

type server struct {
	done chan struct{}
	quit chan error
	work chan int
}

// spin loops forever with no escape hatch.
func spin(counter *int) {
	go func() { // want `goroutine loops forever with no lifetime signal`
		for {
			*counter++
		}
	}()
}

// spinForever is the same hazard behind a named same-package function.
func spinForever(counter *int) {
	for {
		*counter++
	}
}

func spawnNamed(counter *int) {
	go spinForever(counter) // want `goroutine loops forever with no lifetime signal`
}

// selectOnDone carries the canonical escape: a ctx.Done() select arm.
func selectOnDone(ctx context.Context, s *server) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-s.work:
				_ = v
			}
		}
	}()
}

// doneChannel receives from a chan struct{}: close broadcasts, so the
// loop cannot outlive its owner's shutdown.
func doneChannel(s *server) {
	go func() {
		for {
			<-s.done
		}
	}()
}

// rangeOverChannel is bounded by close of the channel.
func rangeOverChannel(s *server) {
	go func() {
		for v := range s.work {
			_ = v
		}
	}()
}

// namedLifecycle: the channel's name declares intent even though its
// element type is not struct{}.
func namedLifecycle(s *server) {
	go func() {
		for {
			if err := <-s.quit; err != nil {
				return
			}
		}
	}()
}

// boundedLoop terminates on its own; no signal needed.
func boundedLoop(counter *int) {
	go func() {
		for i := 0; i < 10; i++ {
			*counter++
		}
	}()
}

// bareReceive blocks forever if the producer is gone.
func bareReceive(s *server) {
	go func() { // want `goroutine blocks on a bare channel receive`
		v := <-s.work
		_ = v
	}()
}

// bareSend blocks forever if the consumer is gone.
func bareSend(s *server) {
	go func() { // want `goroutine blocks on a bare channel send`
		s.work <- 1
	}()
}

// bufferedSend: the channel is visibly buffered, so the send cannot
// block while the buffer has room.
func bufferedSend() error {
	errCh := make(chan error, 1)
	go func() {
		errCh <- nil
	}()
	return <-errCh
}

// nonblockingSend is inside a select with a default arm: fine.
func nonblockingSend(s *server) {
	go func() {
		select {
		case s.work <- 1:
		default:
		}
	}()
}

// nested: the outer goroutine is clean (it waits on done and skips the
// nested go statement), the inner one is its own finding.
func nested(s *server) {
	go func() {
		<-s.done
		go func() { // want `goroutine loops forever with no lifetime signal`
			for {
			}
		}()
	}()
}

// allowedForever documents an intentional process-lifetime goroutine.
func allowedForever(counter *int) {
	//lint:allow goroutinelife process-lifetime sampler owned by the fixture
	go func() {
		for {
			*counter++
		}
	}()
}
