// Package fixture exercises the ctxleak analyzer.
package fixture

import (
	"context"
	"time"
)

type holder struct {
	cancel context.CancelFunc
}

func use(ctx context.Context) error { return ctx.Err() }

func discarded() {
	ctx, _ := context.WithTimeout(context.Background(), time.Second) // want `cancel function discarded`
	_ = use(ctx)
}

var globalCancel context.CancelFunc

func neverCalled() {
	// Assigning to a package-level cancel that nothing reads: the only
	// compilable never-referenced-again shape (a local would be an
	// unused-variable compile error).
	var ctx context.Context
	ctx, globalCancel = context.WithCancel(context.Background()) // want `cancel function is never called`
	_ = use(ctx)
}

func properDefer() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = use(ctx)
}

func earlyReturnLeaks(fail bool) error {
	ctx, cancel := context.WithCancel(context.Background()) // want `cancel function is not called on every path`
	if fail {
		return use(ctx) // leaves without cancelling
	}
	cancel()
	return nil
}

func branchOnly(fail bool) {
	ctx, cancel := context.WithCancel(context.Background()) // want `cancel function is not called on every path`
	if fail {
		cancel()
	}
	_ = use(ctx)
}

func bothBranches(fail bool) {
	ctx, cancel := context.WithCancel(context.Background())
	if fail {
		cancel()
	} else {
		_ = use(ctx)
		cancel()
	}
}

func escapesToStruct(h *holder) context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	return ctx
}

func escapesByReturn() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	return ctx, cancel
}

func escapesToClosure(run func(func())) {
	ctx, cancel := context.WithCancel(context.Background())
	run(func() { cancel() })
	_ = use(ctx)
}

func insideBlockScope(fail bool) {
	if fail {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = use(ctx)
	}
}

func perIteration(items []int) {
	for range items {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = use(ctx)
		cancel()
	}
}

func perIterationLeaks(items []int) {
	for range items {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second) // want `cancel function is not called on every path`
		if use(ctx) != nil {
			continue // next iteration without cancelling
		}
		cancel()
	}
}

func selectAllArms(done chan struct{}) {
	ctx, cancel := context.WithCancel(context.Background())
	select {
	case <-done:
		cancel()
	case <-ctx.Done():
		cancel()
	}
}

func panicPathOwesNothing(fail bool) {
	_, cancel := context.WithCancel(context.Background())
	if fail {
		panic("unreachable in production")
	}
	cancel()
}
