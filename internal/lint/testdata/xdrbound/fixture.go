// Package fixture exercises the xdrbound analyzer.
package fixture

import "snipe/internal/xdr"

const maxName = 256

func decode(d *xdr.Decoder) {
	_, _ = d.String()      // want `uncapped xdr.Decoder.String .*; use StringMax`
	_, _ = d.Bytes()       // want `uncapped xdr.Decoder.Bytes .*; use BytesMax`
	_, _ = d.BytesCopy()   // want `uncapped xdr.Decoder.BytesCopy .*; use BytesCopyMax`
	_, _ = d.StringSlice() // want `uncapped xdr.Decoder.StringSlice .*; use StringSliceMax`

	// Capped variants and fixed-width reads are clean.
	_, _ = d.StringMax(maxName)
	_, _ = d.BytesMax(1 << 16)
	_, _ = d.BytesCopyMax(1 << 16)
	_, _ = d.StringSliceMax(64, maxName)
	_, _ = d.Uint32()
}
