// Package fixture exercises the statskey analyzer.
package fixture

import "snipe/internal/stats"

func register(r *stats.Registry, dynamic string) {
	r.Counter("fixture_send_total")
	r.Counter("fixture_send_totol") // want `near-duplicate of "fixture_send_total"`
	r.Gauge("Fixture-Bad-Name")     // want `does not match convention`
	r.Counter(dynamic)              // want `not a constant string`
	r.Histogram("fixture_rtt_ms", nil)
}
