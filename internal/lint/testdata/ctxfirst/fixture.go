// Package fixture exercises the ctxfirst analyzer. It lives under
// testdata so the go tool never builds it; only linttest does.
//
// Real methods on rcds.Client/comm.Endpoint can only be declared in
// their own packages, so the declaration rules are exercised through
// lookalike types here — the analyzer admits them via the
// snipe/lintfixture/ package-path prefix.
package fixture

import (
	"context"
	"time"

	"snipe/internal/comm"
	"snipe/internal/rcds"
)

func useEndpoint(ep *comm.Endpoint) {
	// The context-first API is the only one, and it is clean.
	_ = ep.SendWait(context.Background(), "peer", 1, nil)
	_, _ = ep.Recv(context.Background())
	_, _ = ep.RecvMatch(context.Background(), "peer", 1)
	_ = ep.MetricsSnapshot()
}

func useClient(c *rcds.Client) {
	_, _ = c.Ping(context.Background())
	_, _ = c.Get(context.Background(), "snipe://x")
	_, _, _ = c.FirstValue(context.Background(), "snipe://x", "addr")
}

// Client is a lookalike of rcds.Client for declaration-rule coverage.
type Client struct{}

// PingContext reintroduces the pre-consolidation name.
func (c *Client) PingContext(ctx context.Context) (string, error) { // want `reintroduces a deprecated \*Context name`
	return "", nil
}

// Get regresses to the old timeout signature (no leading context).
func (c *Client) Get(uri string) ([]string, error) { // want `must take a context.Context as its first parameter`
	return nil, nil
}

// Wait keeps the context-first shape: clean.
func (c *Client) Wait(ctx context.Context, since uint64, timeout time.Duration) (uint64, error) {
	return since, nil
}

// Fetch is outside the consolidated API set: a context-less signature
// on an unrelated method is fine.
func (c *Client) Fetch(uri string) error { return nil }

// Endpoint is a lookalike of comm.Endpoint.
type Endpoint struct{}

// SendWaitContext reintroduces the pre-consolidation name.
func (e *Endpoint) SendWaitContext(ctx context.Context, dst string, tag uint32, p []byte) error { // want `reintroduces a deprecated \*Context name`
	return nil
}

// RecvMatch regresses to a context-less signature.
func (e *Endpoint) RecvMatch(src string, tag uint32) error { // want `must take a context.Context as its first parameter`
	return nil
}

func useLookalikes(c *Client, e *Endpoint) {
	_, _ = c.PingContext(context.Background()) // want `call to deprecated Client.PingContext; use Ping\(ctx, ...\)`
	_, _ = c.Get("snipe://x")
	_ = e.SendWaitContext(context.Background(), "peer", 1, nil) // want `call to deprecated Endpoint.SendWaitContext; use SendWait\(ctx, ...\)`
}
