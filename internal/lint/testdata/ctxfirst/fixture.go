// Package fixture exercises the ctxfirst analyzer. It lives under
// testdata so the go tool never builds it; only linttest does.
package fixture

import (
	"context"
	"time"

	"snipe/internal/comm"
	"snipe/internal/rcds"
)

func useEndpoint(ep *comm.Endpoint) {
	_ = ep.SendWait("peer", 1, nil, time.Second) // want `deprecated Endpoint.SendWait; use SendWaitContext`
	_, _ = ep.Recv(time.Second)                  // want `deprecated Endpoint.Recv; use RecvContext`
	_, _ = ep.RecvMatch("peer", 1, time.Second)  // want `deprecated Endpoint.RecvMatch; use RecvMatchContext`
	sent, _, _, _ := ep.Stats()                  // want `deprecated Endpoint.Stats; use MetricsSnapshot`
	_ = sent

	// Context-first replacements are clean.
	_ = ep.SendWaitContext(context.Background(), "peer", 1, nil)
	_, _ = ep.RecvContext(context.Background())
	_ = ep.MetricsSnapshot()
}

func useClient(c *rcds.Client) {
	_, _ = c.Ping()           // want `deprecated Client.Ping; use PingContext`
	_, _ = c.Get("snipe://x") // want `deprecated Client.Get; use GetContext`

	_, _ = c.PingContext(context.Background())
	_, _ = c.GetContext(context.Background(), "snipe://x")
}

// Deprecated: legacyHelper is itself a deprecated shim, so its calls to
// sibling deprecated APIs are exempt.
func legacyHelper(ep *comm.Endpoint) (*comm.Message, error) {
	return ep.Recv(time.Second)
}
