// Package fixture exercises the ctxfirst analyzer. It lives under
// testdata so the go tool never builds it; only linttest does.
package fixture

import (
	"context"

	"snipe/internal/comm"
	"snipe/internal/rcds"
)

func useEndpoint(ep *comm.Endpoint) {
	// comm.Endpoint's timeout wrappers are gone; the context-first API
	// is the only one, and it is clean.
	_ = ep.SendWaitContext(context.Background(), "peer", 1, nil)
	_, _ = ep.RecvContext(context.Background())
	_, _ = ep.RecvMatchContext(context.Background(), "peer", 1)
	_ = ep.MetricsSnapshot()
}

func useClient(c *rcds.Client) {
	_, _ = c.Ping()           // want `deprecated Client.Ping; use PingContext`
	_, _ = c.Get("snipe://x") // want `deprecated Client.Get; use GetContext`

	_, _ = c.PingContext(context.Background())
	_, _ = c.GetContext(context.Background(), "snipe://x")
}

// Deprecated: legacyHelper is itself a deprecated shim, so its calls to
// sibling deprecated APIs are exempt.
func legacyHelper(c *rcds.Client) (string, error) {
	return c.Ping()
}
