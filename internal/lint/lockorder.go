package lint

import (
	"go/token"
	"sort"
	"strings"
)

// lockorder builds the program-wide lock-acquisition graph over named
// mutex struct fields: an edge A → B means some function acquires B
// while holding A (field granularity — "snipe/internal/comm.Endpoint.mu",
// not a particular instance). Two properties are enforced:
//
//  1. The observed graph must be acyclic. A cycle — including the
//     self-edge of acquiring two instances of the same field — is a
//     latent deadlock: two goroutines taking the edges in opposite
//     order wedge forever.
//  2. Where a partial order is declared (lockorderRanks), every edge
//     must strictly descend it: a lock may only be acquired while
//     holding locks of strictly lower rank.
//
// The declared order for comm.Endpoint, codified here and in DESIGN.md:
//
//	mu → connMu/cacheMu/scoreMu/stripeMu → sendShard.mu
//
// i.e. the receive/delivery lock (mu) is the outermost tier, the four
// peer section locks are one tier in (and unordered among themselves —
// holding two of them at once is itself a violation), and the sharded
// send-state locks are innermost. Endpoint sections today acquire at
// most one of these at a time; the order exists so that if nesting is
// ever introduced, it can only be introduced one way.

// lockorderRank places a mutex field in its group's partial order.
type lockorderRank struct {
	group string // order-declaration name, used in messages
	tier  int    // lower tiers are acquired first (outermost)
}

// lockorderRanks is the declared partial order, keyed by mutex field
// identity. Fields of one group with equal tiers are mutually
// unordered: holding one while acquiring another is a violation.
// The lintfixture entries mirror the comm.Endpoint declaration so the
// fixture corpus can exercise a deliberate inversion.
var lockorderRanks = map[string]lockorderRank{
	"snipe/internal/comm.Endpoint.mu":       {"comm.Endpoint", 0},
	"snipe/internal/comm.Endpoint.connMu":   {"comm.Endpoint", 1},
	"snipe/internal/comm.Endpoint.cacheMu":  {"comm.Endpoint", 1},
	"snipe/internal/comm.Endpoint.scoreMu":  {"comm.Endpoint", 1},
	"snipe/internal/comm.Endpoint.stripeMu": {"comm.Endpoint", 1},
	"snipe/internal/comm.sendShard.mu":      {"comm.Endpoint", 2},

	"snipe/lintfixture/lockorder.Endpoint.mu":      {"fixture.Endpoint", 0},
	"snipe/lintfixture/lockorder.Endpoint.connMu":  {"fixture.Endpoint", 1},
	"snipe/lintfixture/lockorder.Endpoint.cacheMu": {"fixture.Endpoint", 1},
	"snipe/lintfixture/lockorder.shard.mu":         {"fixture.Endpoint", 2},
}

// lockorderDoc is the human-readable order statement per group.
var lockorderDoc = map[string]string{
	"comm.Endpoint":    "mu → connMu/cacheMu/scoreMu/stripeMu → sendShard.mu",
	"fixture.Endpoint": "mu → connMu/cacheMu → shard.mu",
}

// lockorderEdge is one held→acquired pair in the acquisition graph.
type lockorderEdge struct {
	from, to string
}

// NewLockorder returns the lockorder analyzer. Run accumulates
// acquisition edges per package (reporting declared-order violations
// immediately); Finish checks the whole-program graph for cycles.
func NewLockorder() *Analyzer {
	a := &Analyzer{
		Name: "lockorder",
		Doc:  "builds the mutex acquisition graph; reports cycles and violations of the declared lock order",
	}
	edges := map[lockorderEdge]token.Pos{} // first acquisition site per edge
	a.Run = func(pass *Pass) error {
		lw := &lockWalker{
			info: pass.Info,
			onAcquire: func(site lockSite, held map[string]lockSite) {
				if site.field == "" {
					return
				}
				for _, h := range held {
					if h.field == "" {
						continue
					}
					e := lockorderEdge{from: h.field, to: site.field}
					if _, ok := edges[e]; !ok {
						edges[e] = site.pos
					}
					hr, hok := lockorderRanks[h.field]
					sr, sok := lockorderRanks[site.field]
					if hok && sok && hr.group == sr.group && hr.tier >= sr.tier {
						pass.Reportf(site.pos,
							"acquiring %s while holding %s (locked at %s) violates the declared %s lock order (%s)",
							lockorderShort(site.field), lockorderShort(h.field),
							pass.Fset.Position(h.pos), sr.group, lockorderDoc[sr.group])
					}
				}
			},
		}
		for _, file := range pass.Files {
			lw.walkFile(file)
		}
		return nil
	}
	a.Finish = func(report func(pos token.Pos, format string, args ...any)) error {
		adj := map[string][]string{}
		for e := range edges {
			adj[e.from] = append(adj[e.from], e.to)
		}
		for from := range adj {
			sort.Strings(adj[from])
		}
		// Report each edge that can reach its own source — every edge on
		// some cycle — at its first acquisition site, with one witness
		// path spelled out.
		keys := make([]lockorderEdge, 0, len(edges))
		for e := range edges {
			keys = append(keys, e)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].from != keys[j].from {
				return keys[i].from < keys[j].from
			}
			return keys[i].to < keys[j].to
		})
		for _, e := range keys {
			if path := lockorderPath(adj, e.to, e.from); path != nil {
				cycle := append([]string{e.from}, path...)
				short := make([]string, len(cycle))
				for i, n := range cycle {
					short[i] = lockorderShort(n)
				}
				report(edges[e], "lock-order cycle: %s — %s is acquired while %s is held here, and the reverse path exists",
					strings.Join(short, " → "), lockorderShort(e.to), lockorderShort(e.from))
			}
		}
		return nil
	}
	return a
}

// lockorderPath returns a node path from src to dst along acquisition
// edges (inclusive of both), or nil if unreachable. src == dst returns
// the trivial single-node path only if a self-edge exists — handled by
// the caller passing the edge endpoints, so a self-edge e.from==e.to
// finds the one-step path.
func lockorderPath(adj map[string][]string, src, dst string) []string {
	type qent struct {
		node string
		path []string
	}
	seen := map[string]bool{src: true}
	queue := []qent{{src, []string{src}}}
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		if q.node == dst {
			return q.path
		}
		for _, next := range adj[q.node] {
			if seen[next] {
				continue
			}
			seen[next] = true
			queue = append(queue, qent{next, append(append([]string{}, q.path...), next)})
		}
	}
	return nil
}

// lockorderShort trims the module path prefix for readable messages:
// "snipe/internal/comm.Endpoint.mu" → "comm.Endpoint.mu".
func lockorderShort(field string) string {
	if i := strings.LastIndex(field, "/"); i >= 0 {
		return field[i+1:]
	}
	return field
}
