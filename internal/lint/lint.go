// Package lint is snipe-lint: a suite of SNIPE-specific static
// analyzers in the style of golang.org/x/tools/go/analysis, built on
// the standard library's go/ast and go/types only (this tree builds
// offline, so the x/tools module is deliberately not a dependency).
//
// The suite encodes invariants generic vet/staticcheck cannot see:
//
//   - ctxfirst: no production code may call the deprecated
//     timeout-signature wrappers (Endpoint.SendWait/Recv/RecvMatch,
//     the non-Context rcds.Client operations, Endpoint.Stats).
//   - lockedio: no network I/O while a sync.Mutex/RWMutex is held.
//   - xdrbound: every length-prefixed xdr decode must state a
//     caller-side cap (the *Max variants).
//   - statskey: metric-name literals must follow the naming convention
//     and must not be near-duplicates of each other.
//
// A finding is suppressed by a comment on the flagged line or the line
// above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory; a bare allowance is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one suite check. Run is invoked once per
// package; Finish, if set, is invoked once after every package has been
// analyzed (for cross-package checks such as statskey).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	// Finish reports findings that need the whole-program view. It
	// receives a reporter bound to the suite.
	Finish func(report func(pos token.Pos, format string, args ...any)) error
	// Tests includes _test.go files in the analyzer's Pass when the
	// loader was asked for them (goroutinelife checks test goroutines;
	// the API-shape analyzers exempt tests by construction).
	Tests bool
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	testFiles map[*ast.File]bool
	suite     *Suite
}

// IsTest reports whether f was loaded from a _test.go file. Analyzers
// with Tests set use it to scope test-only relaxations.
func (p *Pass) IsTest(f *ast.File) bool { return p.testFiles[f] }

// Reportf records a diagnostic at pos unless a lint:allow comment
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.suite.report(p.Analyzer.Name, pos, format, args...)
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// allowKey identifies one (file, line) carrying a lint:allow comment.
type allowKey struct {
	file string
	line int
}

// Suite runs analyzers over packages and collects diagnostics.
type Suite struct {
	Fset      *token.FileSet
	Analyzers []*Analyzer

	Diags  []Diagnostic
	allows map[allowKey]map[string]bool // (file,line) -> analyzer set
	used   map[allowKey]bool            // allowances that suppressed something
	allPos map[allowKey]token.Pos       // position of the allow comment
}

// NewSuite returns a Suite over fset running the given analyzers.
func NewSuite(fset *token.FileSet, analyzers []*Analyzer) *Suite {
	return &Suite{
		Fset:      fset,
		Analyzers: analyzers,
		allows:    make(map[allowKey]map[string]bool),
		used:      make(map[allowKey]bool),
		allPos:    make(map[allowKey]token.Pos),
	}
}

// RunPackage applies every analyzer to one type-checked package whose
// files are all non-test sources. Loads that include _test.go files go
// through Run, which filters them per analyzer.
func (s *Suite) RunPackage(files []*ast.File, pkg *types.Package, info *types.Info) error {
	return s.Run(&Package{Files: files, Pkg: pkg, Info: info})
}

// Run applies every analyzer to one loaded package. Analyzers without
// Tests see only the non-test files; Tests analyzers see everything and
// can distinguish via Pass.IsTest.
func (s *Suite) Run(p *Package) error {
	for _, f := range p.Files {
		s.collectAllows(f)
	}
	var nonTest []*ast.File
	for _, f := range p.Files {
		if !p.TestFiles[f] {
			nonTest = append(nonTest, f)
		}
	}
	for _, a := range s.Analyzers {
		if a.Run == nil {
			continue
		}
		files := nonTest
		if a.Tests {
			files = p.Files
		}
		pass := &Pass{Analyzer: a, Fset: s.Fset, Files: files, Pkg: p.Pkg, Info: p.Info, testFiles: p.TestFiles, suite: s}
		if err := a.Run(pass); err != nil {
			return fmt.Errorf("%s: %s: %w", a.Name, p.Pkg.Path(), err)
		}
	}
	return nil
}

// Finish runs every analyzer's cross-package phase and reports
// malformed or unused lint:allow comments.
func (s *Suite) Finish() error {
	for _, a := range s.Analyzers {
		if a.Finish == nil {
			continue
		}
		name := a.Name
		report := func(pos token.Pos, format string, args ...any) {
			s.report(name, pos, format, args...)
		}
		if err := a.Finish(report); err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	// A suppression that no longer suppresses anything is stale and
	// must be deleted, or it will silently excuse a future regression.
	for key, analyzers := range s.allows {
		if s.used[key] {
			continue
		}
		names := make([]string, 0, len(analyzers))
		for name := range analyzers {
			names = append(names, name)
		}
		sort.Strings(names)
		s.Diags = append(s.Diags, Diagnostic{
			Pos:      s.Fset.Position(s.allPos[key]),
			Analyzer: "lintallow",
			Message:  fmt.Sprintf("unused suppression for %s; delete it", strings.Join(names, ", ")),
		})
	}
	sort.Slice(s.Diags, func(i, j int) bool {
		a, b := s.Diags[i].Pos, s.Diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return s.Diags[i].Message < s.Diags[j].Message
	})
	return nil
}

// collectAllows indexes every "//lint:allow <analyzer> <reason>"
// comment in f by file and line.
func (s *Suite) collectAllows(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//lint:allow")
			if !ok {
				continue
			}
			pos := s.Fset.Position(c.Pos())
			key := allowKey{pos.Filename, pos.Line}
			fields := strings.Fields(text)
			if len(fields) < 2 {
				s.Diags = append(s.Diags, Diagnostic{
					Pos:      pos,
					Analyzer: "lintallow",
					Message:  "malformed suppression: want //lint:allow <analyzer> <reason>",
				})
				continue
			}
			if s.allows[key] == nil {
				s.allows[key] = make(map[string]bool)
			}
			s.allows[key][fields[0]] = true
			s.allPos[key] = c.Pos()
		}
	}
}

// report records a diagnostic unless a lint:allow comment on the same
// line or the line above names the analyzer.
func (s *Suite) report(analyzer string, pos token.Pos, format string, args ...any) {
	p := s.Fset.Position(pos)
	for _, key := range []allowKey{{p.Filename, p.Line}, {p.Filename, p.Line - 1}} {
		if s.allows[key][analyzer] {
			s.used[key] = true
			return
		}
	}
	s.Diags = append(s.Diags, Diagnostic{Pos: p, Analyzer: analyzer, Message: fmt.Sprintf(format, args...)})
}

// Analyzers returns a fresh instance of the full suite. Instances carry
// per-run state (statskey accumulates names across packages, lockorder
// and taguniq accumulate graphs and registries), so a slice must not be
// shared between suites.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NewCtxfirst(), NewLockedio(), NewXdrbound(), NewStatskey(),
		NewLockorder(), NewCtxleak(), NewGoroutinelife(), NewTaguniq(),
	}
}

// ---- shared type-inspection helpers --------------------------------

// calleeFunc resolves the called function or method of a CallExpr, or
// nil for calls of non-functions (conversions, builtins).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// recvNamed returns the defining package path and type name of a
// method's receiver, dereferencing one pointer, or ("", "") for
// functions and methods on unnamed types.
func recvNamed(f *types.Func) (pkgPath, typeName string) {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", ""
	}
	return obj.Pkg().Path(), obj.Name()
}

// methodKey is "pkgpath.Type.Method", the key the analyzers match
// calls against.
func methodKey(f *types.Func) string {
	pkg, typ := recvNamed(f)
	if pkg == "" {
		return ""
	}
	return pkg + "." + typ + "." + f.Name()
}
