package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ctxleak verifies that every cancel function returned by
// context.WithCancel/WithTimeout/WithDeadline (and their *Cause
// variants) is called on all paths out of its scope. A context whose
// cancel is never called pins its timer and parent-walk bookkeeping
// until the parent context ends — in SNIPE's long-lived daemons the
// parent is often context.Background(), so the leak is forever.
//
// The analysis is intra-procedural and errs conservative-but-quiet:
//
//   - assigning the cancel to the blank identifier is always a finding;
//   - a cancel that is never referenced again is a finding;
//   - a cancel that escapes — stored in a struct or variable, passed as
//     an argument, returned, or captured by a function literal — is
//     assumed managed by its new owner and accepted;
//   - a cancel only ever invoked directly is path-checked within the
//     statement list that declares it: every path to the end of that
//     list, and every return out of it, must contain a call (a defer
//     covers all exits after it executes, which is why
//     `defer cancel()` on the next line is the canonical shape).
var ctxleakFuncs = map[string]bool{
	"WithCancel":        true,
	"WithTimeout":       true,
	"WithDeadline":      true,
	"WithCancelCause":   true,
	"WithTimeoutCause":  true,
	"WithDeadlineCause": true,
}

// NewCtxleak returns the ctxleak analyzer.
func NewCtxleak() *Analyzer {
	a := &Analyzer{
		Name: "ctxleak",
		Doc:  "requires context cancel functions to be called on every path, typically via defer",
	}
	a.Run = runCtxleak
	return a
}

func runCtxleak(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				ctxleakFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// ctxleakCancelAssign recognizes `ctx, cancel := context.WithX(...)`
// (or =) and returns the cancel ident and the context call, or nils.
func ctxleakCancelAssign(info *types.Info, s ast.Stmt) (*ast.Ident, *ast.CallExpr) {
	as, ok := s.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
		return nil, nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "context" || !ctxleakFuncs[f.Name()] {
		return nil, nil
	}
	id, ok := as.Lhs[1].(*ast.Ident)
	if !ok {
		return nil, nil
	}
	return id, call
}

// ctxleakFunc checks every cancel created directly in body (not inside
// nested function literals, which are visited as their own functions).
func ctxleakFunc(pass *Pass, body *ast.BlockStmt) {
	// Statement lists of this function frame, outermost first, without
	// descending into nested FuncLits.
	var lists [][]ast.Stmt
	var collect func(n ast.Node) bool
	collect = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			lists = append(lists, n.List)
		case *ast.CaseClause:
			lists = append(lists, n.Body)
		case *ast.CommClause:
			lists = append(lists, n.Body)
		}
		return true
	}
	ast.Inspect(body, collect)

	for _, list := range lists {
		for i, s := range list {
			id, call := ctxleakCancelAssign(pass.Info, s)
			if id == nil {
				continue
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(),
					"cancel function discarded; the context and its timer leak until the parent context ends")
				continue
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			uses := ctxleakUses(pass.Info, body, id, obj)
			if uses.escapes {
				continue // the new owner is responsible
			}
			if len(uses.calls) == 0 && !uses.deferred {
				pass.Reportf(call.Pos(), "cancel function is never called; the context leaks")
				continue
			}
			st := &ctxleakState{obj: obj, info: pass.Info}
			st.walkStmts(list[i+1:])
			if !st.called || st.leaked {
				pass.Reportf(call.Pos(),
					"cancel function is not called on every path; call it via defer so early returns release the context")
			}
		}
	}
}

// ctxleakUseSet classifies how a cancel object is referenced.
type ctxleakUseSet struct {
	calls    []*ast.CallExpr
	deferred bool
	escapes  bool
}

// ctxleakUses walks body classifying each reference to obj. A reference
// that is not the callee of a direct call or defer — an argument, a
// return value, the RHS of an assignment, a composite-literal element,
// or any use inside a nested function literal — counts as an escape.
func ctxleakUses(info *types.Info, body *ast.BlockStmt, def *ast.Ident, obj types.Object) ctxleakUseSet {
	var out ctxleakUseSet
	var stack []ast.Node
	inFuncLit := 0
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			if _, ok := stack[len(stack)-1].(*ast.FuncLit); ok {
				inFuncLit--
			}
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			inFuncLit++
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || id == def {
			return true
		}
		if info.Uses[id] != obj {
			return true
		}
		if inFuncLit > 0 {
			out.escapes = true
			return true
		}
		// Direct call? parent is CallExpr with Fun == id, grandparent
		// ExprStmt or DeferStmt.
		if len(stack) >= 3 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == id {
				switch stack[len(stack)-3].(type) {
				case *ast.ExprStmt:
					out.calls = append(out.calls, call)
					return true
				case *ast.DeferStmt:
					out.deferred = true
					return true
				}
			}
		}
		out.escapes = true
		return true
	})
	return out
}

// ctxleakState is the all-paths interpreter over the statement list
// following a creation site: called means the fallthrough path has
// definitely called (or deferred) the cancel; leaked means some exit —
// a return, or a break/continue that leaves the region — was reached
// before a call. breakDepth/continueDepth count enclosing constructs
// inside the region a break/continue would target; at depth zero they
// exit the region itself.
type ctxleakState struct {
	obj           types.Object
	info          *types.Info
	called        bool
	leaked        bool
	breakDepth    int
	continueDepth int
}

// stmtCalls reports whether s is a direct `cancel()` or `defer cancel()`.
func (st *ctxleakState) stmtCalls(s ast.Stmt) bool {
	var call *ast.CallExpr
	switch s := s.(type) {
	case *ast.ExprStmt:
		call, _ = ast.Unparen(s.X).(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
	}
	if call == nil {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && st.info.Uses[id] == st.obj
}

// stmtTerminates reports whether s abandons the path without a normal
// return: panic or os.Exit. Such a path owes no cancel (only a defer
// could run there anyway).
func stmtTerminates(info *types.Info, s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
				return true
			}
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok && f.Pkg() != nil &&
			f.Pkg().Path() == "os" && f.Name() == "Exit" {
			return true
		}
	}
	return false
}

func (st *ctxleakState) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		st.walkStmt(s)
	}
}

func (st *ctxleakState) walkStmt(s ast.Stmt) {
	if !st.called && st.stmtCalls(s) {
		st.called = true
		return
	}
	if !st.called && stmtTerminates(st.info, s) {
		st.called = true // path abandoned; nothing more owed on it
		return
	}
	switch s := s.(type) {
	case *ast.ReturnStmt:
		if !st.called {
			st.leaked = true
		}
	case *ast.BranchStmt:
		// A break or continue that targets a construct outside the
		// analyzed region leaves it exactly like a return does.
		switch s.Tok {
		case token.BREAK:
			if st.breakDepth == 0 && !st.called {
				st.leaked = true
			}
		case token.CONTINUE:
			if st.continueDepth == 0 && !st.called {
				st.leaked = true
			}
		}
	case *ast.BlockStmt:
		st.walkStmts(s.List)
	case *ast.LabeledStmt:
		st.walkStmt(s.Stmt)
	case *ast.IfStmt:
		thenSt := st.fork()
		thenSt.walkStmts(s.Body.List)
		elseSt := st.fork()
		if s.Else != nil {
			elseSt.walkStmt(s.Else)
		}
		st.leaked = st.leaked || thenSt.leaked || elseSt.leaked
		if s.Else != nil && thenSt.called && elseSt.called {
			st.called = true
		}
	case *ast.ForStmt:
		// The body may run zero times: calls inside do not count for
		// the fallthrough path, but exits out of the region are still
		// checked.
		bodySt := st.fork()
		bodySt.breakDepth++
		bodySt.continueDepth++
		bodySt.walkStmts(s.Body.List)
		st.leaked = st.leaked || bodySt.leaked
	case *ast.RangeStmt:
		bodySt := st.fork()
		bodySt.breakDepth++
		bodySt.continueDepth++
		bodySt.walkStmts(s.Body.List)
		st.leaked = st.leaked || bodySt.leaked
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var bodyList []ast.Stmt
		if sw, ok := s.(*ast.SwitchStmt); ok {
			bodyList = sw.Body.List
		} else {
			bodyList = s.(*ast.TypeSwitchStmt).Body.List
		}
		all := len(bodyList) > 0
		hasDefault := false
		for _, c := range bodyList {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				hasDefault = true
			}
			caseSt := st.fork()
			caseSt.breakDepth++
			caseSt.walkStmts(cc.Body)
			if !caseSt.called {
				all = false
			}
			st.leaked = st.leaked || caseSt.leaked
		}
		if all && hasDefault {
			st.called = true
		}
	case *ast.SelectStmt:
		// A select executes exactly one clause.
		all := len(s.Body.List) > 0
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			caseSt := st.fork()
			caseSt.breakDepth++
			caseSt.walkStmts(cc.Body)
			if !caseSt.called {
				all = false
			}
			st.leaked = st.leaked || caseSt.leaked
		}
		if all {
			st.called = true
		}
	}
}

func (st *ctxleakState) fork() *ctxleakState {
	c := *st
	return &c
}
