package lint

import (
	"go/ast"
)

// xdrboundUncapped maps uncapped length-prefixed Decoder reads to their
// capped replacements. A hostile length prefix reaching one of these
// is only bounded by the global xdr.MaxDecodeLen (256 MiB) — per-field
// caps keep a single bogus frame from staging a quarter-gigabyte
// allocation, so every wire decoder must state one.
var xdrboundUncapped = map[string]string{
	"snipe/internal/xdr.Decoder.String":      "StringMax",
	"snipe/internal/xdr.Decoder.Bytes":       "BytesMax",
	"snipe/internal/xdr.Decoder.BytesCopy":   "BytesCopyMax",
	"snipe/internal/xdr.Decoder.StringSlice": "StringSliceMax",
}

// NewXdrbound returns the xdrbound analyzer: outside internal/xdr
// itself, length-prefixed decodes must use the *Max variants with a
// field-appropriate cap.
func NewXdrbound() *Analyzer {
	a := &Analyzer{
		Name: "xdrbound",
		Doc:  "requires caller-side caps on xdr length-prefixed decodes",
	}
	a.Run = func(pass *Pass) error {
		if pass.Pkg.Path() == "snipe/internal/xdr" {
			return nil
		}
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeFunc(pass.Info, call)
				if f == nil {
					return true
				}
				repl, ok := xdrboundUncapped[methodKey(f)]
				if !ok {
					return true
				}
				pass.Reportf(call.Pos(),
					"uncapped xdr.Decoder.%s sizes an allocation from wire data; use %s with a field cap",
					f.Name(), repl)
				return true
			})
		}
		return nil
	}
	return a
}
