// Package linttest runs snipe-lint analyzers over fixture packages and
// checks their diagnostics against "// want" comment expectations — the
// same contract as x/tools' analysistest, reimplemented on the standard
// library because this tree builds offline.
//
// A fixture file marks each line that must produce a diagnostic with a
// trailing comment:
//
//	c.Ping() // want `deprecated`
//
// The backquoted (or double-quoted) string is a regular expression that
// must match the diagnostic's message. Lines without a want comment
// must produce no diagnostic.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"snipe/internal/lint"
)

// wantPatRe extracts the expectation patterns following a // want
// marker; a single marker may carry several space-separated patterns
// when one line produces several diagnostics.
var wantPatRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

var (
	exportOnce   sync.Once
	exportLookup func(path string) (io.ReadCloser, error)
	exportErr    error
)

// repoRoot walks up from the working directory to the module root.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("linttest: no go.mod above working directory")
		}
		dir = parent
	}
}

// lookup returns (once per process) an export-data resolver covering
// the whole snipe module and its dependency closure, so fixtures may
// import any snipe or standard-library package.
func lookup(t *testing.T) func(path string) (io.ReadCloser, error) {
	exportOnce.Do(func() {
		root, err := repoRoot()
		if err != nil {
			exportErr = err
			return
		}
		exportLookup, exportErr = lint.ExportLookupFor(root, []string{"./..."})
	})
	if exportErr != nil {
		t.Fatalf("linttest: building export lookup: %v", exportErr)
	}
	return exportLookup
}

// Run type-checks the fixture package in dir and verifies that the
// analyzers produce exactly the diagnostics its want comments describe.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []*ast.File
	testFiles := make(map[*ast.File]bool)
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		files = append(files, f)
		// A fixture named *_test.go exercises an analyzer's test-file
		// relaxations, exactly as LoadWithTests would mark it.
		if strings.HasSuffix(e.Name(), "_test.go") {
			testFiles[f] = true
		}
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no fixture files in %s", dir)
	}

	imp := importer.ForCompiler(fset, "gc", lookup(t))
	info := lint.NewInfo()
	conf := types.Config{Importer: imp}
	pkgPath := "snipe/lintfixture/" + filepath.Base(dir)
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("linttest: type-checking fixture %s: %v", dir, err)
	}

	suite := lint.NewSuite(fset, analyzers)
	if err := suite.Run(&lint.Package{Files: files, Pkg: pkg, Info: info, TestFiles: testFiles}); err != nil {
		t.Fatalf("linttest: %v", err)
	}
	if err := suite.Finish(); err != nil {
		t.Fatalf("linttest: %v", err)
	}

	checkExpectations(t, fset, files, suite.Diags)
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				for _, raw := range wantPatRe.FindAllString(c.Text[idx+len("// want "):], -1) {
					var pat string
					if raw[0] == '`' {
						pat = raw[1 : len(raw)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(raw)
						if err != nil {
							t.Fatalf("linttest: bad want pattern %s: %v", raw, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("linttest: bad want regexp %q: %v", pat, err)
					}
					pos := fset.Position(c.Pos())
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
