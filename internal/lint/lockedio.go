package lint

import (
	"go/ast"
	"go/types"
)

// lockedioIO lists known network-I/O entry points by pkgpath.Type.Method
// (methods) or pkgpath.Func (package functions). A call to any of these
// while a sync mutex is held risks the deadlock/latency class the
// per-connection writer locks of the comm and rcds layers flirt with:
// a blocked write parks every goroutine queued on the mutex.
var lockedioMethods = map[string]bool{
	"snipe/internal/comm.Endpoint.Send":      true,
	"snipe/internal/comm.Endpoint.SendWait":  true,
	"snipe/internal/comm.Endpoint.Recv":      true,
	"snipe/internal/comm.Endpoint.RecvMatch": true,
	"snipe/internal/comm.FrameConn.Send":     true,
	"snipe/internal/comm.FrameConn.Recv":     true,

	"snipe/internal/rcds.Client.Ping":       true,
	"snipe/internal/rcds.Client.Set":        true,
	"snipe/internal/rcds.Client.Add":        true,
	"snipe/internal/rcds.Client.AddSigned":  true,
	"snipe/internal/rcds.Client.Remove":     true,
	"snipe/internal/rcds.Client.RemoveAll":  true,
	"snipe/internal/rcds.Client.Get":        true,
	"snipe/internal/rcds.Client.Values":     true,
	"snipe/internal/rcds.Client.FirstValue": true,
	"snipe/internal/rcds.Client.URIs":       true,
	"snipe/internal/rcds.Client.Vector":     true,
	"snipe/internal/rcds.Client.OpsSince":   true,
	"snipe/internal/rcds.Client.Apply":      true,
	"snipe/internal/rcds.Client.Wait":       true,
	"snipe/internal/rcds.Client.Stats":      true,
	"snipe/internal/rcds.Client.WaitFor":    true,
	"snipe/internal/rcds.Client.roundTrip":  true,
}

var lockedioFuncs = map[string]bool{
	"snipe/internal/rcds.writeFrame": true,
	"snipe/internal/rcds.readFrame":  true,
}

// NewLockedio returns the lockedio analyzer. The analysis is
// intentionally conservative and intra-procedural: it rides the shared
// lockwalk interpreter (see lockwalk.go) and flags any known
// network-I/O call made while a mutex is held.
func NewLockedio() *Analyzer {
	a := &Analyzer{
		Name: "lockedio",
		Doc:  "flags network I/O performed while a sync.Mutex or RWMutex is held",
	}
	a.Run = runLockedio
	return a
}

type lockedioPass struct {
	pass    *Pass
	netConn *types.Interface // nil when the package graph lacks net
}

func runLockedio(pass *Pass) error {
	lp := &lockedioPass{pass: pass, netConn: findNetConn(pass.Pkg)}
	lw := &lockWalker{
		info: pass.Info,
		onCall: func(call *ast.CallExpr, held map[string]lockSite) {
			if len(held) == 0 {
				return
			}
			if name, ok := lp.ioCall(call); ok {
				for key, site := range held {
					lp.pass.Reportf(call.Pos(),
						"network I/O (%s) while holding %s (locked at %s)",
						name, trimRKey(key), lp.pass.Fset.Position(site.pos))
					break
				}
			}
		},
	}
	for _, file := range pass.Files {
		lw.walkFile(file)
	}
	return nil
}

// findNetConn locates the net.Conn interface in the package's import
// closure, so implementations (e.g. *net.TCPConn) are recognized too.
func findNetConn(pkg *types.Package) *types.Interface {
	seen := map[*types.Package]bool{}
	var queue []*types.Package
	queue = append(queue, pkg.Imports()...)
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if seen[p] {
			continue
		}
		seen[p] = true
		if p.Path() == "net" {
			obj := p.Scope().Lookup("Conn")
			if obj == nil {
				return nil
			}
			iface, _ := obj.Type().Underlying().(*types.Interface)
			return iface
		}
		queue = append(queue, p.Imports()...)
	}
	return nil
}

func trimRKey(key string) string {
	if len(key) > 2 && key[len(key)-2:] == ":r" {
		return key[:len(key)-2] + " (read lock)"
	}
	return key
}

// ioCall reports whether call is a known network-I/O operation.
func (lp *lockedioPass) ioCall(call *ast.CallExpr) (string, bool) {
	f := calleeFunc(lp.pass.Info, call)
	if f == nil {
		return "", false
	}
	if key := methodKey(f); key != "" && lockedioMethods[key] {
		return f.Name(), true
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() == nil && f.Pkg() != nil {
		if lockedioFuncs[f.Pkg().Path()+"."+f.Name()] {
			return f.Name(), true
		}
	}
	// Read/Write on anything satisfying net.Conn.
	if lp.netConn != nil && (f.Name() == "Read" || f.Name() == "Write") {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			rt := sig.Recv().Type()
			if types.Implements(rt, lp.netConn) ||
				types.Implements(types.NewPointer(rt), lp.netConn) {
				return "net.Conn." + f.Name(), true
			}
			if named, ok := rt.(*types.Named); ok && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == "net" && named.Obj().Name() == "Conn" {
				return "net.Conn." + f.Name(), true
			}
		}
	}
	return "", false
}
