package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockedioIO lists known network-I/O entry points by pkgpath.Type.Method
// (methods) or pkgpath.Func (package functions). A call to any of these
// while a sync mutex is held risks the deadlock/latency class the
// per-connection writer locks of the comm and rcds layers flirt with:
// a blocked write parks every goroutine queued on the mutex.
var lockedioMethods = map[string]bool{
	"snipe/internal/comm.Endpoint.Send":      true,
	"snipe/internal/comm.Endpoint.SendWait":  true,
	"snipe/internal/comm.Endpoint.Recv":      true,
	"snipe/internal/comm.Endpoint.RecvMatch": true,
	"snipe/internal/comm.FrameConn.Send":     true,
	"snipe/internal/comm.FrameConn.Recv":     true,

	"snipe/internal/rcds.Client.Ping":       true,
	"snipe/internal/rcds.Client.Set":        true,
	"snipe/internal/rcds.Client.Add":        true,
	"snipe/internal/rcds.Client.AddSigned":  true,
	"snipe/internal/rcds.Client.Remove":     true,
	"snipe/internal/rcds.Client.RemoveAll":  true,
	"snipe/internal/rcds.Client.Get":        true,
	"snipe/internal/rcds.Client.Values":     true,
	"snipe/internal/rcds.Client.FirstValue": true,
	"snipe/internal/rcds.Client.URIs":       true,
	"snipe/internal/rcds.Client.Vector":     true,
	"snipe/internal/rcds.Client.OpsSince":   true,
	"snipe/internal/rcds.Client.Apply":      true,
	"snipe/internal/rcds.Client.Wait":       true,
	"snipe/internal/rcds.Client.Stats":      true,
	"snipe/internal/rcds.Client.WaitFor":    true,
	"snipe/internal/rcds.Client.roundTrip":  true,
}

var lockedioFuncs = map[string]bool{
	"snipe/internal/rcds.writeFrame": true,
	"snipe/internal/rcds.readFrame":  true,
}

// NewLockedio returns the lockedio analyzer. The analysis is
// intentionally conservative and intra-procedural: it walks each
// function body in statement order, tracking mutexes locked via
// x.Lock()/x.RLock() and released via x.Unlock()/x.RUnlock() (a defer
// keeps the mutex held to the end of the function), and flags any known
// network-I/O call made while a mutex is held. Function literals are
// analyzed as separate functions with no locks held, so goroutines
// spawned under a lock are not false positives.
func NewLockedio() *Analyzer {
	a := &Analyzer{
		Name: "lockedio",
		Doc:  "flags network I/O performed while a sync.Mutex or RWMutex is held",
	}
	a.Run = runLockedio
	return a
}

// lockSite records where a mutex was locked.
type lockSite struct {
	pos token.Pos
}

type lockedioPass struct {
	pass    *Pass
	netConn *types.Interface // nil when the package graph lacks net
}

func runLockedio(pass *Pass) error {
	lp := &lockedioPass{pass: pass, netConn: findNetConn(pass.Pkg)}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				lp.walkStmts(fd.Body.List, map[string]lockSite{})
			}
		}
		// Function literals anywhere in the file, each a fresh frame.
		ast.Inspect(file, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				lp.walkStmts(fl.Body.List, map[string]lockSite{})
			}
			return true
		})
	}
	return nil
}

// findNetConn locates the net.Conn interface in the package's import
// closure, so implementations (e.g. *net.TCPConn) are recognized too.
func findNetConn(pkg *types.Package) *types.Interface {
	seen := map[*types.Package]bool{}
	var queue []*types.Package
	queue = append(queue, pkg.Imports()...)
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if seen[p] {
			continue
		}
		seen[p] = true
		if p.Path() == "net" {
			obj := p.Scope().Lookup("Conn")
			if obj == nil {
				return nil
			}
			iface, _ := obj.Type().Underlying().(*types.Interface)
			return iface
		}
		queue = append(queue, p.Imports()...)
	}
	return nil
}

// walkStmts interprets stmts in order, mutating held; branch bodies get
// copies so branch-local locks do not leak into the fallthrough path.
func (lp *lockedioPass) walkStmts(stmts []ast.Stmt, held map[string]lockSite) {
	for _, s := range stmts {
		lp.walkStmt(s, held)
	}
}

func copyHeld(held map[string]lockSite) map[string]lockSite {
	out := make(map[string]lockSite, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (lp *lockedioPass) walkStmt(s ast.Stmt, held map[string]lockSite) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		lp.scanExpr(s.X, held)
	case *ast.DeferStmt:
		// A deferred Unlock keeps the mutex held for the rest of the
		// function, which is exactly the state we are tracking; other
		// deferred calls run at return, outside this frame's order.
		if kind, _ := lp.lockOp(s.Call); kind == opNone {
			for _, arg := range s.Call.Args {
				lp.scanExpr(arg, held)
			}
		}
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			lp.scanExpr(arg, held)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			lp.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			lp.scanExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						lp.scanExpr(v, held)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			lp.scanExpr(e, held)
		}
	case *ast.SendStmt:
		lp.scanExpr(s.Chan, held)
		lp.scanExpr(s.Value, held)
	case *ast.IncDecStmt:
		lp.scanExpr(s.X, held)
	case *ast.LabeledStmt:
		lp.walkStmt(s.Stmt, held)
	case *ast.BlockStmt:
		lp.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			lp.walkStmt(s.Init, held)
		}
		lp.scanExpr(s.Cond, held)
		lp.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			lp.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			lp.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			lp.scanExpr(s.Cond, held)
		}
		lp.walkStmts(s.Body.List, copyHeld(held))
	case *ast.RangeStmt:
		lp.scanExpr(s.X, held)
		lp.walkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			lp.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			lp.scanExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lp.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				lp.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				lp.walkStmts(cc.Body, copyHeld(held))
			}
		}
	}
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

// lockOp classifies a call as a mutex operation, returning the held-map
// key for the receiver expression.
func (lp *lockedioPass) lockOp(call *ast.CallExpr) (lockOpKind, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, ""
	}
	f := calleeFunc(lp.pass.Info, call)
	if f == nil {
		return opNone, ""
	}
	pkg, typ := recvNamed(f)
	if pkg != "sync" || (typ != "Mutex" && typ != "RWMutex") {
		return opNone, ""
	}
	key := types.ExprString(sel.X)
	switch f.Name() {
	case "Lock":
		return opLock, key
	case "RLock":
		return opRLock, key + ":r"
	case "Unlock":
		return opUnlock, key
	case "RUnlock":
		return opRUnlock, key + ":r"
	case "TryLock":
		return opLock, key
	case "TryRLock":
		return opRLock, key + ":r"
	}
	return opNone, ""
}

// scanExpr looks for mutex operations and I/O calls inside one
// expression, in source order.
func (lp *lockedioPass) scanExpr(e ast.Expr, held map[string]lockSite) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // analyzed separately with a fresh frame
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch kind, key := lp.lockOp(call); kind {
		case opLock, opRLock:
			held[key] = lockSite{pos: call.Pos()}
			return true
		case opUnlock, opRUnlock:
			delete(held, key)
			return true
		}
		if len(held) == 0 {
			return true
		}
		if name, ok := lp.ioCall(call); ok {
			for key, site := range held {
				lp.pass.Reportf(call.Pos(),
					"network I/O (%s) while holding %s (locked at %s)",
					name, trimRKey(key), lp.pass.Fset.Position(site.pos))
				break
			}
		}
		return true
	})
}

func trimRKey(key string) string {
	if len(key) > 2 && key[len(key)-2:] == ":r" {
		return key[:len(key)-2] + " (read lock)"
	}
	return key
}

// ioCall reports whether call is a known network-I/O operation.
func (lp *lockedioPass) ioCall(call *ast.CallExpr) (string, bool) {
	f := calleeFunc(lp.pass.Info, call)
	if f == nil {
		return "", false
	}
	if key := methodKey(f); key != "" && lockedioMethods[key] {
		return f.Name(), true
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() == nil && f.Pkg() != nil {
		if lockedioFuncs[f.Pkg().Path()+"."+f.Name()] {
			return f.Name(), true
		}
	}
	// Read/Write on anything satisfying net.Conn.
	if lp.netConn != nil && (f.Name() == "Read" || f.Name() == "Write") {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			rt := sig.Recv().Type()
			if types.Implements(rt, lp.netConn) ||
				types.Implements(types.NewPointer(rt), lp.netConn) {
				return "net.Conn." + f.Name(), true
			}
			if named, ok := rt.(*types.Named); ok && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == "net" && named.Obj().Name() == "Conn" {
				return "net.Conn." + f.Name(), true
			}
		}
	}
	return "", false
}
