package lifn

import (
	"errors"
	"strings"
	"testing"

	"snipe/internal/naming"
	"snipe/internal/rcds"
)

func newCat() naming.Catalog {
	return naming.StoreCatalog(rcds.NewStore("lifn-test"))
}

func TestNewUnique(t *testing.T) {
	a, b := New("ckpt", nil), New("ckpt", nil)
	if a == b {
		t.Fatal("counter LIFNs collided")
	}
	if !strings.HasPrefix(a, "lifn:snipe:ckpt-") {
		t.Fatalf("format: %q", a)
	}
}

func TestNewContentAddressed(t *testing.T) {
	a := New("code", []byte("program-1"))
	b := New("code", []byte("program-1"))
	c := New("code", []byte("program-2"))
	if a != b {
		t.Fatal("same content, different LIFN")
	}
	if a == c {
		t.Fatal("different content, same LIFN")
	}
}

func TestBindLocationsUnbind(t *testing.T) {
	cat := newCat()
	l := New("data", nil)
	if _, err := Locations(cat, l); !errors.Is(err, ErrNoLocations) {
		t.Fatalf("want ErrNoLocations, got %v", err)
	}
	Bind(cat, l, "server-a")
	Bind(cat, l, "server-b")
	locs, err := Locations(cat, l)
	if err != nil || len(locs) != 2 {
		t.Fatalf("Locations = %v, %v", locs, err)
	}
	Unbind(cat, l, "server-a")
	locs, _ = Locations(cat, l)
	if len(locs) != 1 || locs[0] != "server-b" {
		t.Fatalf("after unbind: %v", locs)
	}
}

func TestSelectLocation(t *testing.T) {
	locs := []string{
		"snipe://hosts/far/fs;net=wan",
		"snipe://hosts/here/fs;net=lan-a",
		"snipe://hosts/local-host/fs",
	}
	ranked := SelectLocation(locs, "local-host", []string{"lan-a"})
	if !strings.Contains(ranked[0], "local-host") {
		t.Fatalf("same host not first: %v", ranked)
	}
	if !strings.Contains(ranked[1], "lan-a") {
		t.Fatalf("shared net not second: %v", ranked)
	}
	// Stable for equal scores, input not mutated.
	if locs[0] != "snipe://hosts/far/fs;net=wan" {
		t.Fatal("input mutated")
	}
}

func TestSelectLocationNetSuffixParsing(t *testing.T) {
	locs := []string{"a;net=lan;rate=5", "b;net=other"}
	ranked := SelectLocation(locs, "", []string{"lan"})
	if ranked[0] != "a;net=lan;rate=5" {
		t.Fatalf("net with trailing options not matched: %v", ranked)
	}
}

func TestHashBindVerify(t *testing.T) {
	cat := newCat()
	l := New("code", []byte("v1"))
	data := []byte("the program text")
	if err := BindHash(cat, l, data); err != nil {
		t.Fatal(err)
	}
	if err := VerifyHash(cat, l, data); err != nil {
		t.Fatalf("valid data rejected: %v", err)
	}
	if err := VerifyHash(cat, l, []byte("tampered")); err == nil {
		t.Fatal("tampered data accepted")
	}
	// No hash registered: trivially valid.
	if err := VerifyHash(cat, New("other", nil), data); err != nil {
		t.Fatalf("unhashed LIFN rejected: %v", err)
	}
}
