// Package lifn implements Location-Independent File Names (paper
// [13], §5.2.3, §5.7): stable names for files and services that map,
// through RC metadata, to a changing set of locations.
//
// A LIFN names the *content*; its RC metadata carries one AttrLocation
// assertion per replica. "Any process attempting to communicate with
// that service will then see multiple service locations (URLs) from
// which to choose" (§5.7) — SelectLocation implements the paper's
// closest-replica choice using the same network-name metadata the
// unicast router uses.
package lifn

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/seckey"
)

// ErrNoLocations indicates a LIFN with no registered replicas.
var ErrNoLocations = errors.New("lifn: no locations registered")

var counter atomic.Uint64

// New mints a LIFN in the SNIPE namespace. The name embeds a content
// hash when data is supplied (content addressing gives end-to-end
// integrity, the RCDS design goal), otherwise a process-unique counter.
func New(hint string, data []byte) string {
	if data != nil {
		return fmt.Sprintf("lifn:snipe:%s-%s", hint, seckey.ContentHashHex(data)[:16])
	}
	return fmt.Sprintf("lifn:snipe:%s-%d", hint, counter.Add(1))
}

// Bind registers a replica location for the LIFN.
func Bind(cat naming.Catalog, lifn, location string) error {
	return cat.Add(lifn, rcds.AttrLocation, location)
}

// Unbind withdraws a replica location.
func Unbind(cat naming.Catalog, lifn, location string) error {
	return cat.Remove(lifn, rcds.AttrLocation, location)
}

// Locations returns the LIFN's registered replica locations.
func Locations(cat naming.Catalog, lifn string) ([]string, error) {
	locs, err := cat.Values(lifn, rcds.AttrLocation)
	if err != nil {
		return nil, err
	}
	if len(locs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoLocations, lifn)
	}
	return locs, nil
}

// SelectLocation ranks the LIFN's replicas for a client at localHost
// on the given networks and returns them best-first: same host, then a
// shared network (";net=" annotation), then the rest in stable order.
func SelectLocation(locations []string, localHost string, localNets []string) []string {
	netSet := make(map[string]bool, len(localNets))
	for _, n := range localNets {
		netSet[n] = true
	}
	score := func(loc string) int {
		if localHost != "" && strings.Contains(loc, localHost) {
			return 0
		}
		if i := strings.Index(loc, ";net="); i >= 0 {
			net := loc[i+5:]
			if j := strings.IndexByte(net, ';'); j >= 0 {
				net = net[:j]
			}
			if netSet[net] {
				return 1
			}
		}
		return 2
	}
	out := append([]string(nil), locations...)
	sort.SliceStable(out, func(i, j int) bool { return score(out[i]) < score(out[j]) })
	return out
}

// BindHash records the content hash of the LIFN's data so readers can
// verify integrity end-to-end.
func BindHash(cat naming.Catalog, lifn string, data []byte) error {
	return cat.Set(lifn, rcds.AttrCodeHash, seckey.ContentHashHex(data))
}

// VerifyHash checks data against the LIFN's registered content hash.
// A LIFN without a hash assertion verifies trivially.
func VerifyHash(cat naming.Catalog, lifn string, data []byte) error {
	want, ok, err := cat.FirstValue(lifn, rcds.AttrCodeHash)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	if got := seckey.ContentHashHex(data); got != want {
		return fmt.Errorf("lifn: %s content hash mismatch: got %s want %s", lifn, got[:12], want[:12])
	}
	return nil
}
