package daemon

import (
	"context"
	"time"

	"snipe/internal/comm"
)

// recvMatchT adapts the context-first comm.Endpoint receive API to the
// timeout style these tests read most naturally in.
func recvMatchT(e *comm.Endpoint, src string, tag uint32, d time.Duration) (*comm.Message, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return e.RecvMatch(ctx, src, tag)
}
