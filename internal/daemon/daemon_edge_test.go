package daemon

import (
	"errors"
	"testing"
	"time"

	"snipe/internal/comm"
	"snipe/internal/task"
	"snipe/internal/testutil"
)

func TestAdoptUnknownProgram(t *testing.T) {
	w := newWorld(t)
	d := w.newDaemon("h1", nil)
	if err := d.Adopt("urn:x", task.Spec{Program: "ghost"}); !errors.Is(err, task.ErrUnknownProgram) {
		t.Fatalf("want ErrUnknownProgram, got %v", err)
	}
}

func TestAdoptBadSequenceState(t *testing.T) {
	w := newWorld(t)
	reg := task.NewRegistry()
	reg.Register("p", func(ctx *task.Context) error { return nil })
	d := w.newDaemon("h1", reg)
	spec := task.Spec{Program: "p", SeqState: []byte{1, 2, 3}} // not a valid encoding
	if err := d.Adopt("urn:x", spec); err == nil {
		t.Fatal("corrupt sequence state accepted")
	}
}

func TestReleaseUnknownTaskIsNoop(t *testing.T) {
	w := newWorld(t)
	d := w.newDaemon("h1", nil)
	d.Release("urn:never-existed") // must not panic
}

func TestTaskStateUnknown(t *testing.T) {
	w := newWorld(t)
	d := w.newDaemon("h1", nil)
	if _, err := d.TaskState("urn:none"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("want ErrUnknownTask, got %v", err)
	}
	if _, err := d.WaitTask("urn:none", time.Second); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("WaitTask: want ErrUnknownTask, got %v", err)
	}
	if _, err := d.Checkpoint("urn:none", time.Second); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("Checkpoint: want ErrUnknownTask, got %v", err)
	}
}

func TestWaitTaskTimeout(t *testing.T) {
	w := newWorld(t)
	reg := task.NewRegistry()
	reg.Register("idle", func(ctx *task.Context) error {
		<-ctx.Done()
		return task.ErrKilled
	})
	d := w.newDaemon("h1", reg)
	urn, _ := d.Spawn(task.Spec{Program: "idle"})
	if _, err := d.WaitTask(urn, 50*time.Millisecond); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	d.Signal(urn, task.SigKill)
}

func TestDoubleStartRejected(t *testing.T) {
	w := newWorld(t)
	d := w.newDaemon("h1", nil)
	if err := d.Start(); err == nil {
		t.Fatal("second Start accepted")
	}
}

func TestSpawnAfterClose(t *testing.T) {
	w := newWorld(t)
	reg := task.NewRegistry()
	reg.Register("p", func(ctx *task.Context) error { return nil })
	d := New(Config{HostName: "hx", Catalog: w.cat, Registry: reg})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := d.Spawn(task.Spec{Program: "p"}); err == nil {
		t.Fatal("spawn on closed daemon accepted")
	}
	d.Close() // idempotent
}

func TestMalformedProtocolPayloadsIgnored(t *testing.T) {
	// Garbage requests must not crash the daemon or produce replies.
	w := newWorld(t)
	d := w.newDaemon("h1", nil)
	client := w.client("urn:fuzz")
	for _, tag := range []uint32{task.TagSpawnReq, task.TagSignal, task.TagStatusReq,
		task.TagMigrateReq, task.TagCheckpointReq, task.TagReleaseReq} {
		if err := client.Send(d.URN(), tag, []byte{0xFF}); err != nil {
			t.Fatal(err)
		}
	}
	// The daemon is still alive and serving.
	tasks, err := StatusRemote(client, d.URN(), 999, 5*time.Second)
	if err != nil || len(tasks) != 0 {
		t.Fatalf("daemon wedged: %v %v", tasks, err)
	}
}

func TestNotifyViaLaterAddedAttr(t *testing.T) {
	// A watcher added to the notify list via RC metadata (not the spec)
	// is informed of state changes — the paper's metadata-driven notify
	// list (§5.2.3).
	w := newWorld(t)
	reg := task.NewRegistry()
	release := make(chan struct{})
	reg.Register("gated", func(ctx *task.Context) error {
		<-release
		return nil
	})
	d := w.newDaemon("h1", reg)
	watcher := w.client("urn:late-watcher")
	urn, err := d.Spawn(task.Spec{Program: "gated"})
	if err != nil {
		t.Fatal(err)
	}
	// Subscribe after the spawn, via metadata only.
	w.cat.Add(urn, "notify", "urn:late-watcher")
	close(release)
	m, err := recvMatchT(watcher, "", task.TagNotify, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := task.DecodeStateChange(m.Payload)
	if err != nil || sc.URN != urn || sc.To != task.StateExited {
		t.Fatalf("notify: %+v %v", sc, err)
	}
}

func TestCheckpointRemoteErrors(t *testing.T) {
	w := newWorld(t)
	d := w.newDaemon("h1", nil)
	client := w.client("urn:ck")
	if _, err := CheckpointRemote(client, d.URN(), "urn:none", 7, 2*time.Second); !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
}

func TestReleaseRemote(t *testing.T) {
	w := newWorld(t)
	reg := task.NewRegistry()
	reg.Register("ckpt", func(ctx *task.Context) error {
		<-ctx.CheckpointRequested()
		ctx.SaveCheckpoint([]byte{1})
		return task.ErrMigrated
	})
	d := w.newDaemon("h1", reg)
	client := w.client("urn:rr")
	urn, _ := d.Spawn(task.Spec{Program: "ckpt"})
	if _, err := CheckpointRemote(client, d.URN(), urn, 8, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := ReleaseRemote(client, d.URN(), urn); err != nil {
		t.Fatal(err)
	}
	// The task disappears from the table.
	testutil.WaitFor(t, 5*time.Second, func() bool {
		_, err := d.TaskState(urn)
		return errors.Is(err, ErrUnknownTask)
	}, "release never took effect")
}

func TestSpecEncodeViaProtocol(t *testing.T) {
	// Specs with every field populated survive the spawn protocol.
	w := newWorld(t)
	reg := task.NewRegistry()
	got := make(chan task.Spec, 1)
	reg.Register("inspect", func(ctx *task.Context) error {
		got <- ctx.Spec()
		return nil
	})
	d := w.newDaemon("h1", reg)
	client := w.client("urn:spec")
	spec := task.Spec{
		Program:    "inspect",
		Args:       []string{"a", "b"},
		NotifyList: []string{"urn:watcher"},
		CodeURL:    "code.sc",
	}
	if _, err := SpawnRemote(client, d.URN(), spec, 11, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if len(s.Args) != 2 || s.CodeURL != "code.sc" || len(s.NotifyList) != 1 {
			t.Fatalf("spec through protocol: %+v", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("task never ran")
	}
}
