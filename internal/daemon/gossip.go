package daemon

import (
	"fmt"
	"strings"

	"snipe/internal/comm"
	"snipe/internal/gossip"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/task"
)

// This file is the daemon's side of the hierarchical liveness tier:
// instead of writing a catalog heartbeat every tick (O(N) replicated
// writes across the cluster), each daemon runs a gossip.Agent that
// probes its group peers over the daemon's own comm endpoint
// (task.TagGossip) and — when elected reporter — folds the group's
// state into ONE digest write per interval (O(N/groupSize)). The
// per-host heartbeat survives only as the startup record, the clean
// shutdown tombstone, and the Gossip.Legacy fallback.

// startGossip publishes the host's group membership and brings up its
// gossip agent. Called from Start after the endpoint is routable.
func (d *Daemon) startGossip() error {
	groups := d.cfg.Gossip.Groups
	if groups <= 0 {
		groups = 1
	}
	group := gossip.GroupOf(d.hostURL, groups)
	if err := d.cfg.Catalog.Set(d.hostURL, rcds.AttrGossipGroup, fmt.Sprintf("%d/%d", group, groups)); err != nil {
		return fmt.Errorf("daemon %s: publishing gossip group: %w", d.cfg.HostName, err)
	}
	ag, err := gossip.NewAgent(gossip.Config{
		Self:          d.hostURL,
		Group:         group,
		Groups:        groups,
		ProbeInterval: d.cfg.HeartbeatInterval,
		Transport:     gossip.TransportFunc(d.sendGossip),
		Peers:         func() ([]string, error) { return d.gossipPeers(group, groups) },
		WriteDigest:   d.writeDigest,
		Gate:          d.cfg.Gossip.Gate,
		Load:          d.Load,
	})
	if err != nil {
		return fmt.Errorf("daemon %s: %w", d.cfg.HostName, err)
	}
	d.mu.Lock()
	d.agent = ag
	d.mu.Unlock()
	return ag.Start()
}

// sendGossip carries one gossip message to a peer host's daemon over
// the comm layer.
func (d *Daemon) sendGossip(to string, m *gossip.Message) error {
	name := strings.TrimPrefix(to, naming.HostPrefix)
	return d.ep.Send(naming.ProcessURN(name, "daemon"), task.TagGossip, m.Encode())
}

// handleGossip ingests one gossip message from a peer daemon.
func (d *Daemon) handleGossip(m *comm.Message) {
	g, err := gossip.DecodeMessage(m.Payload)
	if err != nil {
		return
	}
	d.mu.Lock()
	ag := d.agent
	d.mu.Unlock()
	if ag != nil {
		ag.Deliver(&g)
	}
}

// gossipPeers lists this daemon's group members from the catalog: the
// hosts that published a matching gossip-group attribute and hash into
// the same group. Legacy-heartbeat hosts never publish the attribute,
// so they are never probed.
func (d *Daemon) gossipPeers(group, groups int) ([]string, error) {
	urls, err := d.cfg.Catalog.URIs(naming.HostPrefix)
	if err != nil {
		return nil, err
	}
	want := fmt.Sprintf("%d/%d", group, groups)
	peers := make([]string, 0, len(urls))
	for _, url := range urls {
		if url == d.hostURL {
			continue
		}
		v, ok, err := d.cfg.Catalog.FirstValue(url, rcds.AttrGossipGroup)
		if err != nil || !ok || v != want {
			continue
		}
		peers = append(peers, url)
	}
	return peers, nil
}

// writeDigest publishes the group digest — the reporter's one catalog
// assertion per interval.
func (d *Daemon) writeDigest(dg *gossip.Digest) error {
	err := d.cfg.Catalog.Set(naming.LivenessGroupURI(dg.Group), rcds.AttrGroupDigest, dg.Format())
	if err == nil {
		d.mDigests.Inc()
	}
	return err
}

// GossipAgent returns the daemon's gossip agent (nil in legacy mode or
// before Start) — the hook tests and experiments use to inspect group
// state.
func (d *Daemon) GossipAgent() *gossip.Agent {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.agent
}
