package daemon

import (
	"context"
	"errors"
	"fmt"
	"time"

	"snipe/internal/comm"
	"snipe/internal/stats"
	"snipe/internal/task"
	"snipe/internal/xdr"
)

// Per-field wire-decode caps handed to the xdr *Max decoders: URNs,
// task states and error messages are short strings; a metrics snapshot
// is JSON of modest size. A corrupt length prefix must fail fast
// instead of sizing an allocation.
const (
	maxWireString   = 4096    // URNs, task states, error messages
	maxWireSnapshot = 1 << 20 // JSON-encoded metrics snapshot
)

// handleMessage dispatches the daemon's message protocol: remote spawn,
// signal delivery, status queries, and migration adoption. Requests
// carry a caller-chosen request ID echoed in the response.
func (d *Daemon) handleMessage(m *comm.Message) {
	switch m.Tag {
	case task.TagSpawnReq:
		d.handleSpawnReq(m)
	case task.TagSignal:
		d.handleSignal(m)
	case task.TagStatusReq:
		d.handleStatusReq(m)
	case task.TagMigrateReq:
		d.handleMigrateReq(m)
	case task.TagCheckpointReq:
		d.handleCheckpointReq(m)
	case task.TagReleaseReq:
		if urn, err := xdr.NewDecoder(m.Payload).StringMax(maxWireString); err == nil {
			d.Release(urn)
		}
	case task.TagStatsReq:
		d.handleStatsReq(m)
	case task.TagGossip:
		d.handleGossip(m)
	}
}

func (d *Daemon) handleStatsReq(m *comm.Message) {
	dec := xdr.NewDecoder(m.Payload)
	reqID, err := dec.Uint64()
	if err != nil {
		return
	}
	b, err := d.StatsJSON()
	e := xdr.NewEncoder(len(b) + 32)
	e.PutUint64(reqID)
	e.PutBool(err == nil)
	if err != nil {
		e.PutString(err.Error())
	} else {
		e.PutString("")
		e.PutBytes(b)
	}
	d.ep.Send(m.Src, task.TagStatsResp, e.Bytes())
}

// StatsRemote fetches a daemon's composed metrics snapshot over the
// message protocol — what the console's stats command runs on.
func StatsRemote(ep *comm.Endpoint, daemonURN string, reqID uint64, timeout time.Duration) (stats.Snapshot, error) {
	e := xdr.NewEncoder(16)
	e.PutUint64(reqID)
	if err := ep.Send(daemonURN, task.TagStatsReq, e.Bytes()); err != nil {
		return stats.Snapshot{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for {
		m, err := ep.RecvMatch(ctx, daemonURN, task.TagStatsResp)
		if err != nil {
			return stats.Snapshot{}, err
		}
		dec := xdr.NewDecoder(m.Payload)
		gotID, err := dec.Uint64()
		if err != nil {
			return stats.Snapshot{}, err
		}
		if gotID != reqID {
			continue
		}
		ok, err := dec.Bool()
		if err != nil {
			return stats.Snapshot{}, err
		}
		msg, err := dec.StringMax(maxWireString)
		if err != nil {
			return stats.Snapshot{}, err
		}
		if !ok {
			return stats.Snapshot{}, fmt.Errorf("%w: %s", ErrRemote, msg)
		}
		b, err := dec.BytesCopyMax(maxWireSnapshot)
		if err != nil {
			return stats.Snapshot{}, err
		}
		return stats.ParseSnapshot(b)
	}
}

// ReleaseRemote ends a checkpointed task's tenure on a remote daemon.
func ReleaseRemote(ep *comm.Endpoint, daemonURN, taskURN string) error {
	e := xdr.NewEncoder(len(taskURN) + 8)
	e.PutString(taskURN)
	return ep.Send(daemonURN, task.TagReleaseReq, e.Bytes())
}

func (d *Daemon) handleCheckpointReq(m *comm.Message) {
	dec := xdr.NewDecoder(m.Payload)
	reqID, err := dec.Uint64()
	if err != nil {
		return
	}
	urn, err := dec.StringMax(maxWireString)
	if err != nil {
		return
	}
	timeoutMs, err := dec.Uint32()
	if err != nil {
		return
	}
	spec, err := d.Checkpoint(urn, time.Duration(timeoutMs)*time.Millisecond)
	e := xdr.NewEncoder(256)
	e.PutUint64(reqID)
	e.PutBool(err == nil)
	if err != nil {
		e.PutString(err.Error())
	} else {
		e.PutString("")
		spec.Encode(e)
	}
	d.ep.Send(m.Src, task.TagCheckpointResp, e.Bytes())
}

// CheckpointRemote asks the daemon at daemonURN to checkpoint taskURN,
// returning the portable spec. The task stays on the old host (in its
// relay window) until ReleaseRemote/Release.
func CheckpointRemote(ep *comm.Endpoint, daemonURN, taskURN string, reqID uint64, timeout time.Duration) (task.Spec, error) {
	e := xdr.NewEncoder(64)
	e.PutUint64(reqID)
	e.PutString(taskURN)
	e.PutUint32(uint32(timeout / time.Millisecond))
	if err := ep.Send(daemonURN, task.TagCheckpointReq, e.Bytes()); err != nil {
		return task.Spec{}, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout+2*time.Second)
	defer cancel()
	for {
		m, err := ep.RecvMatch(ctx, daemonURN, task.TagCheckpointResp)
		if err != nil {
			return task.Spec{}, err
		}
		dec := xdr.NewDecoder(m.Payload)
		gotID, err := dec.Uint64()
		if err != nil {
			return task.Spec{}, err
		}
		if gotID != reqID {
			continue
		}
		ok, err := dec.Bool()
		if err != nil {
			return task.Spec{}, err
		}
		msg, err := dec.StringMax(maxWireString)
		if err != nil {
			return task.Spec{}, err
		}
		if !ok {
			return task.Spec{}, fmt.Errorf("%w: %s", ErrRemote, msg)
		}
		return task.DecodeSpec(dec)
	}
}

func (d *Daemon) handleSpawnReq(m *comm.Message) {
	dec := xdr.NewDecoder(m.Payload)
	reqID, err := dec.Uint64()
	if err != nil {
		return
	}
	spec, err := task.DecodeSpec(dec)
	var urn string
	if err == nil {
		urn, err = d.Spawn(spec)
	}
	e := xdr.NewEncoder(64)
	e.PutUint64(reqID)
	e.PutBool(err == nil)
	if err == nil {
		e.PutString(urn)
	} else {
		e.PutString(err.Error())
	}
	d.ep.Send(m.Src, task.TagSpawnResp, e.Bytes())
}

func (d *Daemon) handleSignal(m *comm.Message) {
	dec := xdr.NewDecoder(m.Payload)
	urn, err := dec.StringMax(maxWireString)
	if err != nil {
		return
	}
	sig, err := dec.Int32()
	if err != nil {
		return
	}
	d.Signal(urn, task.Signal(sig))
}

func (d *Daemon) handleStatusReq(m *comm.Message) {
	dec := xdr.NewDecoder(m.Payload)
	reqID, err := dec.Uint64()
	if err != nil {
		return
	}
	tasks := d.Tasks()
	e := xdr.NewEncoder(256)
	e.PutUint64(reqID)
	e.PutUint32(uint32(len(tasks)))
	for urn, st := range tasks {
		e.PutString(urn)
		e.PutString(string(st))
	}
	d.ep.Send(m.Src, task.TagStatusResp, e.Bytes())
}

func (d *Daemon) handleMigrateReq(m *comm.Message) {
	dec := xdr.NewDecoder(m.Payload)
	reqID, err := dec.Uint64()
	if err != nil {
		return
	}
	urn, err := dec.StringMax(maxWireString)
	if err != nil {
		return
	}
	spec, err := task.DecodeSpec(dec)
	if err == nil {
		err = d.Adopt(urn, spec)
	}
	e := xdr.NewEncoder(32)
	e.PutUint64(reqID)
	e.PutBool(err == nil)
	if err != nil {
		e.PutString(err.Error())
	} else {
		e.PutString("")
	}
	d.ep.Send(m.Src, task.TagMigrateResp, e.Bytes())
}

// --- Client-side helpers -------------------------------------------
//
// These run over any endpoint (a client library's, another daemon's, a
// resource manager's). They serialise one request/response exchange;
// concurrent requests from the same endpoint should use distinct
// request IDs via the reqID counter embedded here.

// ErrRemote wraps an error string returned by a remote daemon.
var ErrRemote = errors.New("daemon: remote error")

// SpawnRemote asks the daemon at daemonURN to spawn spec, returning
// the new task's URN.
func SpawnRemote(ep *comm.Endpoint, daemonURN string, spec task.Spec, reqID uint64, timeout time.Duration) (string, error) {
	e := xdr.NewEncoder(256)
	e.PutUint64(reqID)
	spec.Encode(e)
	if err := ep.Send(daemonURN, task.TagSpawnReq, e.Bytes()); err != nil {
		return "", err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for {
		m, err := ep.RecvMatch(ctx, daemonURN, task.TagSpawnResp)
		if err != nil {
			return "", err
		}
		dec := xdr.NewDecoder(m.Payload)
		gotID, err := dec.Uint64()
		if err != nil {
			return "", err
		}
		if gotID != reqID {
			continue // response to an earlier, abandoned request
		}
		ok, err := dec.Bool()
		if err != nil {
			return "", err
		}
		s, err := dec.StringMax(maxWireString)
		if err != nil {
			return "", err
		}
		if !ok {
			return "", fmt.Errorf("%w: %s", ErrRemote, s)
		}
		return s, nil
	}
}

// SignalRemote delivers a signal to a task via its host daemon.
func SignalRemote(ep *comm.Endpoint, daemonURN, taskURN string, sig task.Signal) error {
	e := xdr.NewEncoder(64)
	e.PutString(taskURN)
	e.PutInt32(int32(sig))
	return ep.Send(daemonURN, task.TagSignal, e.Bytes())
}

// StatusRemote queries a daemon's task table.
func StatusRemote(ep *comm.Endpoint, daemonURN string, reqID uint64, timeout time.Duration) (map[string]task.State, error) {
	e := xdr.NewEncoder(16)
	e.PutUint64(reqID)
	if err := ep.Send(daemonURN, task.TagStatusReq, e.Bytes()); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for {
		m, err := ep.RecvMatch(ctx, daemonURN, task.TagStatusResp)
		if err != nil {
			return nil, err
		}
		dec := xdr.NewDecoder(m.Payload)
		gotID, err := dec.Uint64()
		if err != nil {
			return nil, err
		}
		if gotID != reqID {
			continue
		}
		n, err := dec.Uint32()
		if err != nil {
			return nil, err
		}
		// Each entry costs at least 8 encoded bytes (two string lengths);
		// fail fast on hostile counts before the map preallocation below.
		if int64(n)*8 > int64(dec.Remaining()) {
			return nil, fmt.Errorf("%w: task count %d exceeds remaining %d bytes",
				ErrRemote, n, dec.Remaining())
		}
		out := make(map[string]task.State, min(int(n), 1024))
		for i := uint32(0); i < n; i++ {
			urn, err := dec.StringMax(maxWireString)
			if err != nil {
				return nil, err
			}
			st, err := dec.StringMax(maxWireString)
			if err != nil {
				return nil, err
			}
			out[urn] = task.State(st)
		}
		return out, nil
	}
}

// MigrateRemote asks the daemon at daemonURN to adopt a checkpointed
// task under its existing URN.
func MigrateRemote(ep *comm.Endpoint, daemonURN, taskURN string, spec task.Spec, reqID uint64, timeout time.Duration) error {
	e := xdr.NewEncoder(256)
	e.PutUint64(reqID)
	e.PutString(taskURN)
	spec.Encode(e)
	if err := ep.Send(daemonURN, task.TagMigrateReq, e.Bytes()); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for {
		m, err := ep.RecvMatch(ctx, daemonURN, task.TagMigrateResp)
		if err != nil {
			return err
		}
		dec := xdr.NewDecoder(m.Payload)
		gotID, err := dec.Uint64()
		if err != nil {
			return err
		}
		if gotID != reqID {
			continue
		}
		ok, err := dec.Bool()
		if err != nil {
			return err
		}
		msg, err := dec.StringMax(maxWireString)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%w: %s", ErrRemote, msg)
		}
		return nil
	}
}
