// Package daemon implements the per-host SNIPE daemon (paper §3.3):
// it "mediates the use of resources on its particular host" —
// starting local tasks, monitoring them for state changes, delivering
// signals, publishing machine load, and informing interested parties
// (notify lists) of task status changes. It also answers the remote
// spawn/signal/status/migrate protocol used by clients, resource
// managers and the migration machinery.
package daemon

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"snipe/internal/comm"
	"snipe/internal/gossip"
	"snipe/internal/liveness"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/stats"
	"snipe/internal/task"
	"snipe/internal/xdr"
)

// Errors of the daemon layer.
var (
	// ErrUnknownTask indicates an operation on a task the daemon does
	// not host.
	ErrUnknownTask = errors.New("daemon: unknown task")
	// ErrRequirements indicates a spec this host cannot satisfy.
	ErrRequirements = errors.New("daemon: host cannot satisfy requirements")
	// ErrNotCheckpointed indicates a checkpoint request the task did not
	// honour in time.
	ErrNotCheckpointed = errors.New("daemon: task did not checkpoint")
)

// ListenSpec describes one interface the daemon (and its tasks) listen
// on: the transport, the bind address, and the RC interface metadata.
// It is the comm layer's listen specification, re-exported so daemon
// configuration does not require importing comm.
type ListenSpec = comm.ListenSpec

// Config configures a host daemon.
type Config struct {
	HostName string // short name; the host URL is derived from it
	Arch     string // host architecture identifier
	CPUs     int
	MemoryMB int
	Catalog  naming.Catalog // RC metadata access
	Registry *task.Registry // available programs
	Listens  []ListenSpec   // interfaces; default loopback TCP

	// HeartbeatInterval is the liveness cadence. In the default gossip
	// mode it is the probe interval of the host's gossip agent; in
	// legacy mode (Gossip.Legacy) it is the cadence of per-tick catalog
	// heartbeat writes, each jittered ±10% so many virtual hosts
	// sharing a replica do not thundering-herd it in lockstep. Default
	// 100ms.
	HeartbeatInterval time.Duration

	// Gossip tunes the daemon's participation in the hierarchical
	// gossip liveness tier (see internal/gossip). The zero value is the
	// default: gossip enabled, one cluster-wide group.
	Gossip GossipOptions
}

// GossipOptions configures a daemon's gossip liveness participation.
type GossipOptions struct {
	// Legacy disables gossip and restores the original per-tick catalog
	// heartbeat — the fallback for mixed clusters and the ablation
	// baseline for the write-amplification experiment.
	Legacy bool
	// Groups is the cluster-wide gossip group count; hosts hash into
	// groups by name (gossip.GroupOf). Default 1.
	Groups int
	// Gate injects partitions into gossip traffic for netsim-style
	// failure experiments; nil means no injection.
	Gate func(from, to string) error
}

// WithLegacyHeartbeat returns a copy of the config running the
// original per-tick catalog heartbeat instead of gossip liveness.
func (c Config) WithLegacyHeartbeat() Config {
	c.Gossip.Legacy = true
	return c
}

// runningTask tracks one hosted task.
type runningTask struct {
	urn   string
	spec  task.Spec
	ctx   *task.Context
	ep    *comm.Endpoint
	state task.State
	err   error
	done  chan struct{}
}

// Daemon is one host's SNIPE daemon.
type Daemon struct {
	cfg      Config
	hostURL  string
	urn      string
	ep       *comm.Endpoint
	resolver *naming.Resolver

	mu      sync.Mutex
	tasks   map[string]*runningTask
	nextID  int
	closed  bool
	crashed bool // Kill(): die without catalog writes, simulating a crash
	done    chan struct{}
	wg      sync.WaitGroup
	started bool
	hbSeq   uint64        // heartbeat sequence number (guarded by mu)
	agent   *gossip.Agent // gossip liveness participant (nil in legacy mode)

	// Telemetry (see internal/stats); pointers captured at construction.
	metrics     *stats.Registry
	mHeartbeats *stats.Counter // per-host heartbeat publications to RC metadata
	mDigests    *stats.Counter // group digest publications (reporter duty)
	mSpawns     *stats.Counter
	mSpawnErrs  *stats.Counter
	mSignals    *stats.Counter
	mNotifies   *stats.Counter
	hSpawnUs    *stats.Histogram // spawn request → task running
}

// New creates a daemon; call Start to bring it up.
func New(cfg Config) *Daemon {
	if cfg.Registry == nil {
		cfg.Registry = task.NewRegistry()
	}
	if len(cfg.Listens) == 0 {
		cfg.Listens = []ListenSpec{{Transport: "tcp", Addr: "127.0.0.1:0"}}
	}
	if cfg.CPUs == 0 {
		cfg.CPUs = 1
	}
	if cfg.Arch == "" {
		cfg.Arch = "go-sim"
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 100 * time.Millisecond
	}
	d := &Daemon{
		cfg:     cfg,
		hostURL: naming.HostURL(cfg.HostName),
		urn:     naming.ProcessURN(cfg.HostName, "daemon"),
		tasks:   make(map[string]*runningTask),
		done:    make(chan struct{}),
		metrics: stats.NewRegistry(),
	}
	d.mHeartbeats = d.metrics.Counter("heartbeats")
	d.mDigests = d.metrics.Counter("digest_writes")
	d.mSpawns = d.metrics.Counter("spawns")
	d.mSpawnErrs = d.metrics.Counter("spawn_errors")
	d.mSignals = d.metrics.Counter("signals")
	d.mNotifies = d.metrics.Counter("notifies")
	d.hSpawnUs = d.metrics.Histogram("spawn_latency_us", stats.LatencyBucketsUs)
	return d
}

// HostURL returns the host's distinguished URL.
func (d *Daemon) HostURL() string { return d.hostURL }

// URN returns the daemon's own process URN (the address for spawn and
// signal requests).
func (d *Daemon) URN() string { return d.urn }

// Registry returns the daemon's program registry.
func (d *Daemon) Registry() *task.Registry { return d.cfg.Registry }

// Resolver returns the daemon's RC-backed resolver.
func (d *Daemon) Resolver() *naming.Resolver { return d.resolver }

// Endpoint returns the daemon's own communications endpoint.
func (d *Daemon) Endpoint() *comm.Endpoint { return d.ep }

// Start brings the daemon up: endpoints listening, host metadata
// registered, protocol handler and load monitor running.
func (d *Daemon) Start() error {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return errors.New("daemon: already started")
	}
	d.started = true
	d.mu.Unlock()

	d.resolver = naming.NewResolver(d.cfg.Catalog)
	d.ep = comm.NewEndpoint(d.urn,
		comm.WithResolver(d.resolver),
		comm.WithHandler(d.handleMessage,
			task.TagSpawnReq, task.TagSignal, task.TagStatusReq,
			task.TagMigrateReq, task.TagCheckpointReq, task.TagReleaseReq,
			task.TagStatsReq, task.TagGossip))
	var routes []comm.Route
	for _, ls := range d.cfg.Listens {
		route, err := d.ep.Listen(ls)
		if err != nil {
			d.ep.Close()
			return fmt.Errorf("daemon %s: %w", d.cfg.HostName, err)
		}
		routes = append(routes, route)
	}

	// Publish host metadata (§5.2.1).
	cat := d.cfg.Catalog
	if err := cat.Set(d.hostURL, rcds.AttrArch, d.cfg.Arch); err != nil {
		return err
	}
	cat.Set(d.hostURL, rcds.AttrCPUs, fmt.Sprintf("%d", d.cfg.CPUs))
	cat.Set(d.hostURL, rcds.AttrMemory, fmt.Sprintf("%d", d.cfg.MemoryMB))
	cat.Set(d.hostURL, rcds.AttrHostDaemonURL, d.urn)
	d.publishHeartbeat(false) // liveness + load, one write (see internal/liveness)
	for _, r := range routes {
		cat.Add(d.hostURL, rcds.AttrInterface, r.String())
	}
	if err := naming.Register(cat, d.urn, routes); err != nil {
		return err
	}

	if d.cfg.Gossip.Legacy {
		// Legacy liveness: one replicated heartbeat write per tick.
		d.wg.Add(1)
		go d.loadLoop()
		return nil
	}
	// Gossip liveness: the heartbeat published above stays as the host's
	// startup record; ongoing liveness and load ride the gossip tier and
	// its group digest.
	return d.startGossip()
}

// Routes returns the daemon's currently advertised interfaces.
func (d *Daemon) Routes() []comm.Route {
	if d.ep == nil {
		return nil
	}
	return d.ep.Routes()
}

// WithdrawRoute takes one of the daemon's interfaces out of service:
// the listener closes, and the route is withdrawn from the daemon's
// communication addresses and from the host's interface inventory, so
// peers re-resolving the daemon see only the survivors. Multi-homed
// hosts use this for planned interface maintenance; unplanned failures
// reach the same state through the comm layer's route invalidation.
func (d *Daemon) WithdrawRoute(route comm.Route) error {
	if d.ep == nil {
		return errors.New("daemon: not started")
	}
	if err := d.ep.CloseListener(route); err != nil {
		return err
	}
	cat := d.cfg.Catalog
	if err := naming.WithdrawRoute(cat, d.urn, route); err != nil {
		return err
	}
	if err := cat.Remove(d.hostURL, rcds.AttrInterface, route.String()); err != nil {
		return err
	}
	d.resolver.Invalidate(d.urn)
	return nil
}

// Close stops the daemon and kills its tasks. This is the clean
// shutdown path: after the heartbeat loop stops, the daemon publishes
// a tombstone heartbeat and withdraws its records from RC metadata, so
// liveness monitors see a planned departure ("left"), never a crash.
func (d *Daemon) Close() { d.shutdown(false) }

// Kill simulates a host crash for failure-injection tests and benches:
// the daemon dies with NO catalog writes — no tombstone, no state
// updates, no notify messages — leaving its host record behind exactly
// as a power failure would. Liveness monitors must discover the death
// from heartbeat silence alone.
func (d *Daemon) Kill() { d.shutdown(true) }

func (d *Daemon) shutdown(crash bool) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.crashed = crash
	close(d.done)
	tasks := make([]*runningTask, 0, len(d.tasks))
	for _, rt := range d.tasks {
		tasks = append(tasks, rt)
	}
	d.mu.Unlock()
	for _, rt := range tasks {
		rt.ctx.Deliver(task.SigKill)
	}
	d.wg.Wait()
	d.mu.Lock()
	agent := d.agent
	d.mu.Unlock()
	if agent != nil {
		if crash {
			agent.Stop() // crash simulation: no goodbye gossip
		} else {
			agent.Close() // gossip departure + final digest hand-off
		}
	}
	if !crash {
		// The heartbeat loop is down (wg.Wait above), so no racing beat
		// can resurrect the record after the tombstone lands.
		d.publishHeartbeat(true)
		cat := d.cfg.Catalog
		cat.Remove(d.hostURL, rcds.AttrHostDaemonURL, d.urn)
		naming.Unregister(cat, d.urn)
	}
	if d.ep != nil {
		d.ep.Close()
	}
	d.mu.Lock()
	for _, rt := range d.tasks {
		rt.ep.Close()
	}
	d.mu.Unlock()
}

// publishHeartbeat folds liveness and load into one replicated RC
// write: a monotonically increasing sequence number, the wall clock,
// and the load figure placement reads (down marks the clean-shutdown
// tombstone).
func (d *Daemon) publishHeartbeat(down bool) {
	d.mu.Lock()
	d.hbSeq++
	hb := liveness.Heartbeat{Seq: d.hbSeq, Time: time.Now().UnixNano(), Down: down}
	d.mu.Unlock()
	hb.Load = d.Load()
	d.cfg.Catalog.Set(d.hostURL, rcds.AttrHeartbeat, hb.String())
	d.mHeartbeats.Inc()
}

// loadLoop periodically publishes the host's heartbeat — carrying the
// load figure (running task count per CPU) that resource-manager
// placement consumes, and the sequence number liveness monitors watch.
// Each interval is jittered ±10% so heartbeats from many hosts decay
// out of phase instead of thundering-herding the RC replica.
func (d *Daemon) loadLoop() {
	defer d.wg.Done()
	timer := time.NewTimer(d.jitteredInterval())
	defer timer.Stop()
	for {
		select {
		case <-d.done:
			return
		case <-timer.C:
			d.publishHeartbeat(false)
			timer.Reset(d.jitteredInterval())
		}
	}
}

// jitteredInterval returns the configured heartbeat interval ±10%.
func (d *Daemon) jitteredInterval() time.Duration {
	base := d.cfg.HeartbeatInterval
	return base + time.Duration((rand.Float64()*0.2-0.1)*float64(base))
}

// Load returns the current load figure: running tasks per CPU.
func (d *Daemon) Load() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	running := 0
	for _, rt := range d.tasks {
		if rt.state == task.StateRunning || rt.state == task.StateSuspended {
			running++
		}
	}
	return float64(running) / float64(d.cfg.CPUs)
}

// Metrics returns the daemon's own metric registry.
func (d *Daemon) Metrics() *stats.Registry { return d.metrics }

// MetricsSnapshot captures the host's full observability picture: the
// daemon's counters plus its endpoint's comm metrics and — when the
// catalog is backed by a local store — RC catalog metrics, composed
// under "daemon.", "comm." and "rcds." name prefixes.
func (d *Daemon) MetricsSnapshot() stats.Snapshot {
	d.mu.Lock()
	total := len(d.tasks)
	running := 0
	for _, rt := range d.tasks {
		if rt.state == task.StateRunning || rt.state == task.StateSuspended {
			running++
		}
	}
	d.mu.Unlock()
	d.metrics.Gauge("tasks").Set(float64(total))
	d.metrics.Gauge("tasks_running").Set(float64(running))
	d.metrics.Gauge("load").Set(d.Load())
	snaps := []stats.Snapshot{d.metrics.Snapshot().Prefixed("daemon")}
	if d.ep != nil {
		snaps = append(snaps, d.ep.MetricsSnapshot().Prefixed("comm"))
	}
	if ms, ok := d.cfg.Catalog.(interface{ MetricsSnapshot() stats.Snapshot }); ok {
		snaps = append(snaps, ms.MetricsSnapshot().Prefixed("rcds"))
	}
	return stats.Merge(snaps...)
}

// StatsJSON renders the composed snapshot as JSON — the daemon's
// machine-readable observability surface, also served over the message
// protocol via TagStatsReq.
func (d *Daemon) StatsJSON() ([]byte, error) { return d.MetricsSnapshot().JSON() }

// checkRequirements verifies this host can run the spec.
func (d *Daemon) checkRequirements(spec *task.Spec) error {
	if spec.Req.Host != "" && spec.Req.Host != d.hostURL {
		return fmt.Errorf("%w: pinned to %s", ErrRequirements, spec.Req.Host)
	}
	if spec.Req.Arch != "" && spec.Req.Arch != d.cfg.Arch {
		return fmt.Errorf("%w: needs arch %s, host is %s", ErrRequirements, spec.Req.Arch, d.cfg.Arch)
	}
	if spec.Req.MinMemoryMB > 0 && spec.Req.MinMemoryMB > d.cfg.MemoryMB {
		return fmt.Errorf("%w: needs %d MB, host has %d", ErrRequirements, spec.Req.MinMemoryMB, d.cfg.MemoryMB)
	}
	return nil
}

// Spawn starts a task on this host and returns its URN. The new
// process's metadata (location, state, notify list) is published so
// that any SNIPE process can find and communicate with it (§5.5).
func (d *Daemon) Spawn(spec task.Spec) (string, error) {
	d.mu.Lock()
	d.nextID++
	urn := naming.ProcessURN(d.cfg.HostName, fmt.Sprintf("%s-%d", spec.Program, d.nextID))
	d.mu.Unlock()
	return urn, d.spawnAs(urn, spec)
}

// Adopt restarts a migrated or checkpointed task under its existing
// URN, restoring comm sequencing state (§5.6).
func (d *Daemon) Adopt(urn string, spec task.Spec) error {
	return d.spawnAs(urn, spec)
}

func (d *Daemon) spawnAs(urn string, spec task.Spec) (err error) {
	start := time.Now()
	defer func() {
		if err != nil {
			d.mSpawnErrs.Inc()
		} else {
			d.mSpawns.Inc()
			d.hSpawnUs.Observe(float64(time.Since(start).Microseconds()))
		}
	}()
	if err := d.checkRequirements(&spec); err != nil {
		return err
	}
	fn, err := d.cfg.Registry.Lookup(spec.Program)
	if err != nil {
		return err
	}

	ep := comm.NewEndpoint(urn, comm.WithResolver(d.resolver))
	var routes []comm.Route
	for _, ls := range d.cfg.Listens {
		// Tasks listen on the same interfaces as the daemon, any port.
		spec := ls
		spec.Addr = rebind(ls.Addr)
		route, err := ep.Listen(spec)
		if err != nil {
			ep.Close()
			return fmt.Errorf("daemon: task endpoint: %w", err)
		}
		routes = append(routes, route)
	}
	if spec.SeqState != nil {
		ss, err := comm.DecodeSequenceState(xdr.NewDecoder(spec.SeqState))
		if err != nil {
			ep.Close()
			return fmt.Errorf("daemon: restoring sequences: %w", err)
		}
		ep.RestoreSequences(ss)
	}

	ctx := task.NewContext(urn, d.hostURL, spec, ep)
	ctx.SetCatalog(d.cfg.Catalog)
	rt := &runningTask{urn: urn, spec: spec, ctx: ctx, ep: ep, state: task.StateRunning, done: make(chan struct{})}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		ep.Close()
		return errors.New("daemon: closed")
	}
	d.tasks[urn] = rt
	d.mu.Unlock()

	// Publish process metadata (§5.2.3).
	cat := d.cfg.Catalog
	if err := naming.Register(cat, urn, routes); err != nil {
		return err
	}
	cat.Set(urn, rcds.AttrState, string(task.StateRunning))
	cat.Set(urn, "host", d.hostURL)
	for _, n := range spec.NotifyList {
		cat.Add(urn, rcds.AttrNotify, n)
	}
	cat.Add(d.hostURL, "task", urn)

	d.wg.Add(1)
	go d.runTask(rt, fn)
	d.notifyStateChange(rt, task.StatePending, task.StateRunning)
	return nil
}

// rebind strips any fixed port from a daemon listen address so tasks
// get their own ports.
func rebind(addr string) string {
	for i := len(addr) - 1; i >= 0; i-- {
		if addr[i] == ':' {
			return addr[:i] + ":0"
		}
	}
	return addr
}

func (d *Daemon) runTask(rt *runningTask, fn task.Func) {
	defer d.wg.Done()
	err := runSafely(fn, rt.ctx)

	from := task.StateRunning
	var to task.State
	switch {
	case errors.Is(err, task.ErrMigrated):
		to = task.StateCheckpointed
		// Freeze the endpoint before the checkpoint is collected: no
		// message may be acknowledged after the mailbox snapshot, or it
		// would be lost in migration.
		rt.ep.Quiesce()
	case err == nil || errors.Is(err, task.ErrKilled):
		to = task.StateExited
	default:
		to = task.StateFailed
	}
	d.mu.Lock()
	rt.state = to
	rt.err = err
	crashed := d.crashed
	close(rt.done)
	d.mu.Unlock()

	// Withdraw the task's addresses; keep its state metadata (the
	// paper's daemons record exits for later queries). A crashing
	// daemon (Kill) writes nothing: a real crash would not get to.
	if !crashed {
		naming.Unregister(d.cfg.Catalog, rt.urn)
		d.cfg.Catalog.Set(rt.urn, rcds.AttrState, string(to))
		d.notifyStateChange(rt, from, to)
	}
	if to != task.StateCheckpointed {
		rt.ep.Close()
	}
}

// runSafely converts task panics into failures rather than daemon
// crashes — one errant task must not take the host down.
func runSafely(fn task.Func, ctx *task.Context) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("task panicked: %v", r)
		}
	}()
	return fn(ctx)
}

// notifyStateChange informs the task's notify list (§5.2.3): spec list
// plus any AttrNotify assertions added later.
func (d *Daemon) notifyStateChange(rt *runningTask, from, to task.State) {
	targets := map[string]bool{}
	for _, n := range rt.spec.NotifyList {
		targets[n] = true
	}
	if vals, err := d.cfg.Catalog.Values(rt.urn, rcds.AttrNotify); err == nil {
		for _, n := range vals {
			targets[n] = true
		}
	}
	if len(targets) == 0 {
		return
	}
	payload := task.EncodeStateChange(task.StateChange{URN: rt.urn, From: from, To: to, Host: d.hostURL})
	for n := range targets {
		d.ep.Send(n, task.TagNotify, payload)
		d.mNotifies.Inc()
	}
}

// Signal delivers a signal to a local task.
func (d *Daemon) Signal(urn string, sig task.Signal) error {
	d.mu.Lock()
	rt, ok := d.tasks[urn]
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTask, urn)
	}
	rt.ctx.Deliver(sig)
	d.mSignals.Inc()
	if sig == task.SigSuspend || sig == task.SigResume {
		state := task.StateSuspended
		if sig == task.SigResume {
			state = task.StateRunning
		}
		from := rt.state
		d.mu.Lock()
		if rt.state == task.StateRunning || rt.state == task.StateSuspended {
			rt.state = state
		}
		d.mu.Unlock()
		d.cfg.Catalog.Set(urn, rcds.AttrState, string(state))
		d.notifyStateChange(rt, from, state)
	}
	return nil
}

// TaskState reports a hosted task's state.
func (d *Daemon) TaskState(urn string) (task.State, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rt, ok := d.tasks[urn]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownTask, urn)
	}
	return rt.state, nil
}

// Tasks lists hosted task URNs and their states.
func (d *Daemon) Tasks() map[string]task.State {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]task.State, len(d.tasks))
	for urn, rt := range d.tasks {
		out[urn] = rt.state
	}
	return out
}

// WaitTask blocks until the task leaves the running/suspended states,
// returning its final state and error.
func (d *Daemon) WaitTask(urn string, timeout time.Duration) (task.State, error) {
	d.mu.Lock()
	rt, ok := d.tasks[urn]
	d.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownTask, urn)
	}
	select {
	case <-rt.done:
		d.mu.Lock()
		defer d.mu.Unlock()
		return rt.state, rt.err
	case <-time.After(timeout):
		return "", comm.ErrTimeout
	}
}

// Checkpoint asks a task to checkpoint and waits for it to hand off,
// returning a Spec that Adopt can restart elsewhere: program, args,
// saved state, and comm sequencing state. The task must cooperate (see
// task.Context.CheckpointRequested); tasks that do not respond within
// the timeout fail the request.
func (d *Daemon) Checkpoint(urn string, timeout time.Duration) (task.Spec, error) {
	d.mu.Lock()
	rt, ok := d.tasks[urn]
	d.mu.Unlock()
	if !ok {
		return task.Spec{}, fmt.Errorf("%w: %s", ErrUnknownTask, urn)
	}
	rt.ctx.RequestCheckpoint()
	select {
	case <-rt.done:
	case <-time.After(timeout):
		return task.Spec{}, ErrNotCheckpointed
	}
	d.mu.Lock()
	state := rt.state
	d.mu.Unlock()
	if state != task.StateCheckpointed {
		return task.Spec{}, fmt.Errorf("%w: task ended in state %s", ErrNotCheckpointed, state)
	}
	spec := rt.spec
	spec.Checkpoint = rt.ctx.TakeCheckpoint()
	seq := rt.ep.SnapshotSequences()
	e := xdr.NewEncoder(64)
	seq.Encode(e)
	spec.SeqState = e.Bytes()
	// The endpoint stays open briefly as the paper's relay/redirect
	// window; Release closes it.
	return spec, nil
}

// Release finishes a checkpointed task's tenure on this host, closing
// its endpoint (the end of the §5.6 relay window) and dropping it from
// the task table.
func (d *Daemon) Release(urn string) {
	d.mu.Lock()
	rt, ok := d.tasks[urn]
	if ok {
		delete(d.tasks, urn)
	}
	d.mu.Unlock()
	if ok {
		rt.ep.Close()
		d.cfg.Catalog.Remove(d.hostURL, "task", urn)
	}
}
