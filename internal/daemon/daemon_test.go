package daemon

import (
	"errors"
	"strings"
	"testing"
	"time"

	"snipe/internal/comm"
	"snipe/internal/liveness"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/task"
	"snipe/internal/testutil"
	"snipe/internal/xdr"
)

// testWorld is a shared catalog plus helpers for daemon tests.
type testWorld struct {
	t     *testing.T
	store *rcds.Store
	cat   naming.Catalog
}

func newWorld(t *testing.T) *testWorld {
	store := rcds.NewStore("test")
	return &testWorld{t: t, store: store, cat: naming.StoreCatalog(store)}
}

func (w *testWorld) newDaemon(host string, reg *task.Registry) *Daemon {
	w.t.Helper()
	d := New(Config{
		HostName: host,
		Arch:     "go-sim",
		CPUs:     2,
		MemoryMB: 512,
		Catalog:  w.cat,
		Registry: reg,
	})
	if err := d.Start(); err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(d.Close)
	return d
}

// client returns an endpoint registered in the catalog, for talking to
// daemons.
func (w *testWorld) client(urn string) *comm.Endpoint {
	w.t.Helper()
	ep := comm.NewEndpoint(urn, comm.WithResolver(naming.NewResolver(w.cat)))
	route, err := ep.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		w.t.Fatal(err)
	}
	naming.Register(w.cat, urn, []comm.Route{route})
	w.t.Cleanup(ep.Close)
	return ep
}

func TestDaemonStartPublishesHostMetadata(t *testing.T) {
	w := newWorld(t)
	d := w.newDaemon("h1", nil)
	host := d.HostURL()
	if v, ok := w.store.FirstValue(host, rcds.AttrArch); !ok || v != "go-sim" {
		t.Fatalf("arch = %q %v", v, ok)
	}
	if v, ok := w.store.FirstValue(host, rcds.AttrHostDaemonURL); !ok || v != d.URN() {
		t.Fatalf("daemon url = %q %v", v, ok)
	}
	if ifs := w.store.Values(host, rcds.AttrInterface); len(ifs) == 0 {
		t.Fatal("no interfaces published")
	}
	if addrs := w.store.Values(d.URN(), rcds.AttrCommAddr); len(addrs) == 0 {
		t.Fatal("daemon endpoint not registered")
	}
}

func TestWithdrawRoute(t *testing.T) {
	w := newWorld(t)
	d := New(Config{
		HostName: "h-multi",
		Catalog:  w.cat,
		Listens: []ListenSpec{
			{Transport: "tcp", Addr: "127.0.0.1:0", NetName: "eth"},
			{Transport: "tcp", Addr: "127.0.0.1:0", NetName: "atm"},
		},
	})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	routes := d.Routes()
	if len(routes) != 2 {
		t.Fatalf("expected 2 advertised routes, got %v", routes)
	}
	if addrs := w.store.Values(d.URN(), rcds.AttrCommAddr); len(addrs) != 2 {
		t.Fatalf("expected 2 registered comm addresses, got %v", addrs)
	}

	victim, survivor := routes[0], routes[1]
	if err := d.WithdrawRoute(victim); err != nil {
		t.Fatalf("WithdrawRoute: %v", err)
	}
	addrs := w.store.Values(d.URN(), rcds.AttrCommAddr)
	if len(addrs) != 1 || addrs[0] != survivor.String() {
		t.Fatalf("expected only %s to remain, got %v", survivor, addrs)
	}
	ifs := w.store.Values(d.HostURL(), rcds.AttrInterface)
	if len(ifs) != 1 || ifs[0] != survivor.String() {
		t.Fatalf("expected host inventory to keep only %s, got %v", survivor, ifs)
	}
	if got := d.Routes(); len(got) != 1 || got[0] != survivor {
		t.Fatalf("endpoint still listening on withdrawn route: %v", got)
	}
	// The daemon remains reachable over the survivor.
	client := w.client("urn:snipe:process:h-multi:probe")
	if _, err := StatusRemote(client, d.URN(), 71, 5*time.Second); err != nil {
		t.Fatalf("status query over surviving route: %v", err)
	}
}

func TestSpawnRunExit(t *testing.T) {
	w := newWorld(t)
	reg := task.NewRegistry()
	ran := make(chan string, 1)
	reg.Register("hello", func(ctx *task.Context) error {
		ran <- ctx.Args()[0]
		return nil
	})
	d := w.newDaemon("h1", reg)
	urn, err := d.Spawn(task.Spec{Program: "hello", Args: []string{"world"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(urn, "urn:snipe:process:h1:hello-") {
		t.Fatalf("urn = %q", urn)
	}
	select {
	case arg := <-ran:
		if arg != "world" {
			t.Fatalf("arg = %q", arg)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("task never ran")
	}
	st, err := d.WaitTask(urn, 3*time.Second)
	if err != nil || st != task.StateExited {
		t.Fatalf("final state = %v, %v", st, err)
	}
	// Metadata: state recorded, comm addrs withdrawn.
	if v, _ := w.store.FirstValue(urn, rcds.AttrState); v != string(task.StateExited) {
		t.Fatalf("state metadata = %q", v)
	}
	if addrs := w.store.Values(urn, rcds.AttrCommAddr); len(addrs) != 0 {
		t.Fatalf("addresses not withdrawn: %v", addrs)
	}
}

func TestSpawnUnknownProgram(t *testing.T) {
	w := newWorld(t)
	d := w.newDaemon("h1", nil)
	if _, err := d.Spawn(task.Spec{Program: "ghost"}); !errors.Is(err, task.ErrUnknownProgram) {
		t.Fatalf("want ErrUnknownProgram, got %v", err)
	}
}

func TestSpawnRequirementsEnforced(t *testing.T) {
	w := newWorld(t)
	reg := task.NewRegistry()
	reg.Register("p", func(ctx *task.Context) error { return nil })
	d := w.newDaemon("h1", reg)
	cases := []task.Spec{
		{Program: "p", Req: task.Requirements{Arch: "sparc-solaris"}},
		{Program: "p", Req: task.Requirements{MinMemoryMB: 100000}},
		{Program: "p", Req: task.Requirements{Host: "snipe://hosts/other"}},
	}
	for i, spec := range cases {
		if _, err := d.Spawn(spec); !errors.Is(err, ErrRequirements) {
			t.Fatalf("case %d: want ErrRequirements, got %v", i, err)
		}
	}
	// A satisfiable pinned spec works.
	if _, err := d.Spawn(task.Spec{Program: "p", Req: task.Requirements{Host: d.HostURL(), Arch: "go-sim", MinMemoryMB: 128}}); err != nil {
		t.Fatal(err)
	}
}

func TestTaskFailureRecorded(t *testing.T) {
	w := newWorld(t)
	reg := task.NewRegistry()
	reg.Register("bad", func(ctx *task.Context) error { return errors.New("boom") })
	reg.Register("panics", func(ctx *task.Context) error { panic("ouch") })
	d := w.newDaemon("h1", reg)

	urn, _ := d.Spawn(task.Spec{Program: "bad"})
	st, err := d.WaitTask(urn, 3*time.Second)
	if st != task.StateFailed || err == nil {
		t.Fatalf("bad: %v %v", st, err)
	}

	urn2, _ := d.Spawn(task.Spec{Program: "panics"})
	st2, err2 := d.WaitTask(urn2, 3*time.Second)
	if st2 != task.StateFailed || err2 == nil || !strings.Contains(err2.Error(), "panicked") {
		t.Fatalf("panics: %v %v", st2, err2)
	}
}

func TestKillSignal(t *testing.T) {
	w := newWorld(t)
	reg := task.NewRegistry()
	reg.Register("loop", func(ctx *task.Context) error {
		<-ctx.Done()
		return task.ErrKilled
	})
	d := w.newDaemon("h1", reg)
	urn, _ := d.Spawn(task.Spec{Program: "loop"})
	if err := d.Signal(urn, task.SigKill); err != nil {
		t.Fatal(err)
	}
	st, _ := d.WaitTask(urn, 3*time.Second)
	if st != task.StateExited {
		t.Fatalf("state = %v", st)
	}
	if err := d.Signal("urn:nope", task.SigKill); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("unknown task: %v", err)
	}
}

func TestSuspendResume(t *testing.T) {
	w := newWorld(t)
	reg := task.NewRegistry()
	progress := make(chan int, 100)
	reg.Register("ticker", func(ctx *task.Context) error {
		for i := 0; ; i++ {
			if ctx.CheckPause() {
				return task.ErrKilled
			}
			progress <- i
			time.Sleep(5 * time.Millisecond)
		}
	})
	d := w.newDaemon("h1", reg)
	urn, _ := d.Spawn(task.Spec{Program: "ticker"})
	<-progress // running
	d.Signal(urn, task.SigSuspend)
	if st, _ := d.TaskState(urn); st != task.StateSuspended {
		t.Fatalf("state = %v", st)
	}
	// Drain and confirm progress stops.
	time.Sleep(30 * time.Millisecond)
	for len(progress) > 0 {
		<-progress
	}
	select {
	case <-progress:
		t.Fatal("task progressed while suspended")
	case <-time.After(50 * time.Millisecond):
	}
	d.Signal(urn, task.SigResume)
	select {
	case <-progress:
	case <-time.After(2 * time.Second):
		t.Fatal("task did not resume")
	}
	d.Signal(urn, task.SigKill)
	d.WaitTask(urn, 3*time.Second)
}

func TestTasksMessagingBetweenHosts(t *testing.T) {
	w := newWorld(t)
	reg := task.NewRegistry()
	got := make(chan string, 1)
	reg.Register("receiver", func(ctx *task.Context) error {
		m, err := ctx.Recv(5 * time.Second)
		if err != nil {
			return err
		}
		got <- string(m.Payload)
		return nil
	})
	reg.Register("sender", func(ctx *task.Context) error {
		return ctx.Send(ctx.Args()[0], 1, []byte("inter-host"))
	})
	d1 := w.newDaemon("h1", reg)
	d2 := w.newDaemon("h2", reg)

	rurn, err := d1.Spawn(task.Spec{Program: "receiver"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Spawn(task.Spec{Program: "sender", Args: []string{rurn}}); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if msg != "inter-host" {
			t.Fatalf("payload = %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message never arrived")
	}
}

func TestNotifyListOnExit(t *testing.T) {
	w := newWorld(t)
	reg := task.NewRegistry()
	reg.Register("brief", func(ctx *task.Context) error { return nil })
	d := w.newDaemon("h1", reg)
	watcher := w.client("urn:watcher")

	urn, err := d.Spawn(task.Spec{Program: "brief", NotifyList: []string{"urn:watcher"}})
	if err != nil {
		t.Fatal(err)
	}
	// Expect running and exited notifications.
	seen := map[task.State]bool{}
	for i := 0; i < 2; i++ {
		m, err := recvMatchT(watcher, "", task.TagNotify, 5*time.Second)
		if err != nil {
			t.Fatalf("notify %d: %v", i, err)
		}
		sc, err := task.DecodeStateChange(m.Payload)
		if err != nil {
			t.Fatal(err)
		}
		if sc.URN != urn {
			t.Fatalf("notify for %q", sc.URN)
		}
		seen[sc.To] = true
	}
	if !seen[task.StateRunning] || !seen[task.StateExited] {
		t.Fatalf("states seen: %v", seen)
	}
}

func TestRemoteSpawnAndStatus(t *testing.T) {
	w := newWorld(t)
	reg := task.NewRegistry()
	reg.Register("idle", func(ctx *task.Context) error {
		<-ctx.Done()
		return task.ErrKilled
	})
	d := w.newDaemon("h1", reg)
	client := w.client("urn:client")

	urn, err := SpawnRemote(client, d.URN(), task.Spec{Program: "idle"}, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := StatusRemote(client, d.URN(), 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tasks[urn] != task.StateRunning {
		t.Fatalf("status: %v", tasks)
	}
	// Remote signal.
	if err := SignalRemote(client, d.URN(), urn, task.SigKill); err != nil {
		t.Fatal(err)
	}
	if st, _ := d.WaitTask(urn, 3*time.Second); st != task.StateExited {
		t.Fatalf("after remote kill: %v", st)
	}
	// Remote spawn failure is reported.
	if _, err := SpawnRemote(client, d.URN(), task.Spec{Program: "ghost"}, 3, 5*time.Second); !errors.Is(err, ErrRemote) {
		t.Fatalf("want ErrRemote, got %v", err)
	}
}

func TestCheckpointAndAdopt(t *testing.T) {
	w := newWorld(t)
	reg := task.NewRegistry()
	// counter counts; on checkpoint request it saves its count.
	reg.Register("counter", func(ctx *task.Context) error {
		count := 0
		if st := ctx.RestoredState(); st != nil {
			d := xdr.NewDecoder(st)
			v, err := d.Uint32()
			if err != nil {
				return err
			}
			count = int(v)
		}
		for {
			select {
			case <-ctx.CheckpointRequested():
				e := xdr.NewEncoder(8)
				e.PutUint32(uint32(count))
				ctx.SaveCheckpoint(e.Bytes())
				return task.ErrMigrated
			case <-ctx.Done():
				return task.ErrKilled
			case <-time.After(time.Millisecond):
				count++
				if count == 1000000 {
					return nil
				}
			}
		}
	})
	d1 := w.newDaemon("h1", reg)
	d2 := w.newDaemon("h2", reg)

	urn, err := d1.Spawn(task.Spec{Program: "counter"})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	spec, err := d1.Checkpoint(urn, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Checkpoint == nil {
		t.Fatal("no checkpoint captured")
	}
	d1.Release(urn)
	if err := d2.Adopt(urn, spec); err != nil {
		t.Fatal(err)
	}
	if st, err := d2.TaskState(urn); err != nil || st != task.StateRunning {
		t.Fatalf("adopted state: %v %v", st, err)
	}
	// The adopted task restored a positive count: checkpoint again and
	// inspect.
	time.Sleep(20 * time.Millisecond)
	spec2, err := d2.Checkpoint(urn, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	dec := xdr.NewDecoder(spec2.Checkpoint)
	v, err := dec.Uint32()
	if err != nil || v == 0 {
		t.Fatalf("count after adoption = %d, %v", v, err)
	}
}

func TestCheckpointTimeoutOnUncooperativeTask(t *testing.T) {
	w := newWorld(t)
	reg := task.NewRegistry()
	reg.Register("stubborn", func(ctx *task.Context) error {
		<-ctx.Done()
		return task.ErrKilled
	})
	d := w.newDaemon("h1", reg)
	urn, _ := d.Spawn(task.Spec{Program: "stubborn"})
	if _, err := d.Checkpoint(urn, 100*time.Millisecond); !errors.Is(err, ErrNotCheckpointed) {
		t.Fatalf("want ErrNotCheckpointed, got %v", err)
	}
	d.Signal(urn, task.SigKill)
}

func TestLoadPublishing(t *testing.T) {
	w := newWorld(t)
	reg := task.NewRegistry()
	reg.Register("idle", func(ctx *task.Context) error {
		<-ctx.Done()
		return task.ErrKilled
	})
	d := w.newDaemon("h1", reg)
	if d.Load() != 0 {
		t.Fatalf("initial load = %v", d.Load())
	}
	var urns []string
	for i := 0; i < 4; i++ {
		urn, err := d.Spawn(task.Spec{Program: "idle"})
		if err != nil {
			t.Fatal(err)
		}
		urns = append(urns, urn)
	}
	if got := d.Load(); got != 2.0 { // 4 tasks / 2 CPUs
		t.Fatalf("load = %v", got)
	}
	// The heartbeat loop publishes the load figure to the catalog.
	testutil.WaitFor(t, 3*time.Second, func() bool {
		load, ok := liveness.HostLoad(w.cat, d.HostURL())
		return ok && load == 2.0
	}, "load never published to the catalog")
	for _, urn := range urns {
		d.Signal(urn, task.SigKill)
	}
}

func TestSpawnConcurrent(t *testing.T) {
	w := newWorld(t)
	reg := task.NewRegistry()
	reg.Register("quick", func(ctx *task.Context) error { return nil })
	d := w.newDaemon("h1", reg)
	const n = 16
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := d.Spawn(task.Spec{Program: "quick"})
			errs <- err
		}()
	}
	urnSet := map[string]bool{}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for urn := range d.Tasks() {
		if urnSet[urn] {
			t.Fatalf("duplicate URN %s", urn)
		}
		urnSet[urn] = true
	}
	if len(urnSet) != n {
		t.Fatalf("spawned %d unique tasks", len(urnSet))
	}
}

func TestRebind(t *testing.T) {
	if got := rebind("127.0.0.1:8080"); got != "127.0.0.1:0" {
		t.Fatalf("rebind = %q", got)
	}
	if got := rebind("[::1]:99"); got != "[::1]:0" {
		t.Fatalf("rebind v6 = %q", got)
	}
	if got := rebind("noport"); got != "noport" {
		t.Fatalf("rebind = %q", got)
	}
}

func BenchmarkSpawnExit(b *testing.B) {
	store := rcds.NewStore("bench")
	reg := task.NewRegistry()
	reg.Register("quick", func(ctx *task.Context) error { return nil })
	d := New(Config{HostName: "bh", Catalog: naming.StoreCatalog(store), Registry: reg})
	if err := d.Start(); err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		urn, err := d.Spawn(task.Spec{Program: "quick"})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.WaitTask(urn, 5*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHeartbeatIntervalConfigurable(t *testing.T) {
	w := newWorld(t)
	// Legacy mode: the per-tick heartbeat IS the configurable cadence
	// under test (gossip mode writes no per-tick heartbeats at all).
	d := New(Config{
		HostName: "hb-fast", Catalog: w.cat,
		HeartbeatInterval: 10 * time.Millisecond,
	}.WithLegacyHeartbeat())
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	readSeq := func() uint64 {
		v, ok := w.store.FirstValue(d.HostURL(), rcds.AttrHeartbeat)
		if !ok {
			return 0
		}
		hb, err := liveness.ParseHeartbeat(v)
		if err != nil {
			t.Fatalf("malformed heartbeat %q: %v", v, err)
		}
		return hb.Seq
	}
	start := readSeq()
	time.Sleep(200 * time.Millisecond)
	// 200ms at a 10ms cadence (±10% jitter) publishes ~20 beats; the
	// default 100ms cadence could manage at most 3. Requiring 6 proves
	// the configured interval took effect with wide scheduling slack.
	if got := readSeq(); got < start+6 {
		t.Fatalf("seq advanced %d->%d in 200ms; configured interval ignored", start, got)
	}
}

func TestCloseWritesTombstone(t *testing.T) {
	w := newWorld(t)
	d := New(Config{HostName: "hb-clean", Catalog: w.cat, HeartbeatInterval: 10 * time.Millisecond})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	host, urn := d.HostURL(), d.URN()
	d.Close()

	v, ok := w.store.FirstValue(host, rcds.AttrHeartbeat)
	if !ok {
		t.Fatal("no heartbeat record after close")
	}
	hb, err := liveness.ParseHeartbeat(v)
	if err != nil || !hb.Down {
		t.Fatalf("final heartbeat %q not a tombstone (%v)", v, err)
	}
	// The daemon record and its endpoint registration are withdrawn.
	if v, ok := w.store.FirstValue(host, rcds.AttrHostDaemonURL); ok {
		t.Fatalf("daemon url survived close: %q", v)
	}
	if addrs := w.store.Values(urn, rcds.AttrCommAddr); len(addrs) != 0 {
		t.Fatalf("endpoint registration survived close: %v", addrs)
	}
}

func TestKillWritesNothing(t *testing.T) {
	// Kill simulates a crash: the daemon dies without touching the
	// catalog, leaving its last ordinary heartbeat and all metadata in
	// place for the liveness monitor to age out.
	w := newWorld(t)
	reg := task.NewRegistry()
	reg.Register("idle", func(ctx *task.Context) error {
		<-ctx.Done()
		return task.ErrKilled
	})
	d := New(Config{HostName: "hb-crash", Catalog: w.cat, Registry: reg, HeartbeatInterval: 10 * time.Millisecond})
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	urn, err := d.Spawn(task.Spec{Program: "idle"})
	if err != nil {
		t.Fatal(err)
	}
	host := d.HostURL()
	d.Kill()

	v, ok := w.store.FirstValue(host, rcds.AttrHeartbeat)
	if !ok {
		t.Fatal("heartbeat record vanished on crash")
	}
	if hb, err := liveness.ParseHeartbeat(v); err != nil || hb.Down {
		t.Fatalf("crash wrote a tombstone: %q (%v)", v, err)
	}
	if _, ok := w.store.FirstValue(host, rcds.AttrHostDaemonURL); !ok {
		t.Fatal("crash cleaned up the daemon record")
	}
	// The killed task's metadata is frozen mid-flight, not settled by
	// the dying daemon — settling is the surviving RM's job.
	if st, _ := w.store.FirstValue(urn, rcds.AttrState); st != string(task.StateRunning) {
		t.Fatalf("crash settled task state to %q", st)
	}
	d.Kill() // idempotent
}
