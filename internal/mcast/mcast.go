// Package mcast implements SNIPE's reliable multicast (paper §5.4).
//
// A multicast group is a named set of processes addressable as one.
// Actual routing is performed by multicast routers (in the paper,
// host daemons that "elect themselves as multicast routers on a
// per-group basis"). The fault-tolerance discipline is the paper's:
//
//   - each member registers its membership with more than half of the
//     group's routers;
//   - each message is initially sent to more than half of the routers;
//   - routers relay to members and to routers that have not yet seen
//     the message.
//
// Any majority of senders' routers intersects any majority of members'
// routers, so "there is at least one path from the sending process to
// each recipient process" while any minority of routers is down.
// Duplicate deliveries from redundant paths are suppressed at routers
// and members by (origin, message-id) dedup.
//
// This multicast is, as the paper notes, built for reliable group
// communication across the Internet, not for the tightly coupled
// collectives of MPI (those live in internal/mpi).
package mcast

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"snipe/internal/comm"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/task"
	"snipe/internal/xdr"
)

// Envelope kinds.
const (
	kJoin uint8 = iota + 1
	kLeave
	kData    // member → router
	kRelay   // router → router
	kDeliver // router → member
)

// Errors of the multicast layer.
var (
	// ErrNoRouters indicates a group with no reachable routers.
	ErrNoRouters = errors.New("mcast: group has no routers")
)

// GroupTag returns the message tag used for deliveries of a group,
// derived from the group URN so that a member of several groups can
// receive each selectively.
func GroupTag(group string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(group))
	// Keep clear of the system tag range.
	return h.Sum32() % (task.TagSystemBase - 1)
}

// envelope is the multicast wire format, carried in TagMcast messages
// between members and routers and in group-tagged messages to members.
type envelope struct {
	Kind   uint8
	Group  string
	Origin string // original sender URN
	MsgID  uint64 // origin-assigned
	AppTag uint32
	Member string // join/leave subject
	Data   []byte
}

func (ev *envelope) encode() []byte {
	e := xdr.NewEncoder(64 + len(ev.Data))
	e.PutUint8(ev.Kind)
	e.PutString(ev.Group)
	e.PutString(ev.Origin)
	e.PutUint64(ev.MsgID)
	e.PutUint32(ev.AppTag)
	e.PutString(ev.Member)
	e.PutBytes(ev.Data)
	return e.Bytes()
}

// Per-field wire-decode caps handed to the xdr *Max decoders, so a
// corrupt length prefix fails fast instead of sizing an allocation.
const (
	maxWireName = 4096                // group names and member URNs
	maxWireData = comm.MaxMessageSize // one multicast payload
)

func decodeEnvelope(b []byte) (*envelope, error) {
	d := xdr.NewDecoder(b)
	ev := &envelope{}
	var err error
	if ev.Kind, err = d.Uint8(); err != nil {
		return nil, err
	}
	if ev.Group, err = d.StringMax(maxWireName); err != nil {
		return nil, err
	}
	if ev.Origin, err = d.StringMax(maxWireName); err != nil {
		return nil, err
	}
	if ev.MsgID, err = d.Uint64(); err != nil {
		return nil, err
	}
	if ev.AppTag, err = d.Uint32(); err != nil {
		return nil, err
	}
	if ev.Member, err = d.StringMax(maxWireName); err != nil {
		return nil, err
	}
	if ev.Data, err = d.BytesCopyMax(maxWireData); err != nil {
		return nil, err
	}
	return ev, nil
}

type dedupKey struct {
	origin string
	msgID  uint64
}

type groupState struct {
	members map[string]bool
	seen    map[dedupKey]bool
}

// Router relays multicast traffic for any number of groups. In the
// full system a Router runs alongside each host daemon; it has its own
// process URN and endpoint.
type Router struct {
	urn string
	cat naming.Catalog
	ep  *comm.Endpoint

	mu     sync.Mutex
	groups map[string]*groupState
	closed bool
}

// NewRouter creates a router named after hostName and registers its
// endpoint in the catalog. listens defaults to loopback TCP.
func NewRouter(hostName string, cat naming.Catalog, listens []comm.Route) (*Router, error) {
	r := &Router{
		urn:    naming.ProcessURN(hostName, "mcast-router"),
		cat:    cat,
		groups: make(map[string]*groupState),
	}
	r.ep = comm.NewEndpoint(r.urn,
		comm.WithResolver(naming.NewResolver(cat)),
		comm.WithHandler(r.handle, task.TagMcast))
	if len(listens) == 0 {
		listens = []comm.Route{{Transport: "tcp", Addr: "127.0.0.1:0"}}
	}
	var routes []comm.Route
	for _, l := range listens {
		route, err := r.ep.Listen(l.Spec())
		if err != nil {
			r.ep.Close()
			return nil, fmt.Errorf("mcast: router listen: %w", err)
		}
		routes = append(routes, route)
	}
	if err := naming.Register(cat, r.urn, routes); err != nil {
		r.ep.Close()
		return nil, err
	}
	return r, nil
}

// URN returns the router's process URN.
func (r *Router) URN() string { return r.urn }

// MaybeServe implements the paper's self-election heuristic: the
// router volunteers for the group if the group currently has fewer
// than target routers. It returns whether this router now serves the
// group.
func (r *Router) MaybeServe(group string, target int) (bool, error) {
	routers, err := r.cat.Values(group, rcds.AttrMcastRouter)
	if err != nil {
		return false, err
	}
	for _, existing := range routers {
		if existing == r.urn {
			r.ensureGroup(group)
			return true, nil
		}
	}
	if len(routers) >= target {
		return false, nil
	}
	if err := r.cat.Add(group, rcds.AttrMcastRouter, r.urn); err != nil {
		return false, err
	}
	r.ensureGroup(group)
	return true, nil
}

// Serve unconditionally announces this router for the group.
func (r *Router) Serve(group string) error {
	if err := r.cat.Add(group, rcds.AttrMcastRouter, r.urn); err != nil {
		return err
	}
	r.ensureGroup(group)
	return nil
}

// Withdraw removes this router from the group's router set.
func (r *Router) Withdraw(group string) error {
	r.mu.Lock()
	delete(r.groups, group)
	r.mu.Unlock()
	return r.cat.Remove(group, rcds.AttrMcastRouter, r.urn)
}

func (r *Router) ensureGroup(group string) *groupState {
	r.mu.Lock()
	defer r.mu.Unlock()
	gs, ok := r.groups[group]
	if !ok {
		gs = &groupState{members: make(map[string]bool), seen: make(map[dedupKey]bool)}
		r.groups[group] = gs
	}
	return gs
}

// Members reports how many members of group are registered at this
// router. Joins are asynchronous envelopes, so observers (tests, ops
// tooling) poll this to watch membership settle instead of sleeping a
// guessed interval.
func (r *Router) Members(group string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	gs, ok := r.groups[group]
	if !ok {
		return 0
	}
	return len(gs.members)
}

// Close withdraws the router from every group it serves and shuts its
// endpoint (simulating a router crash for the E4 experiments when
// called without Withdraw).
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	r.ep.Close()
}

func (r *Router) handle(m *comm.Message) {
	if m.Tag != task.TagMcast {
		return
	}
	ev, err := decodeEnvelope(m.Payload)
	if err != nil {
		return
	}
	switch ev.Kind {
	case kJoin:
		gs := r.ensureGroup(ev.Group)
		r.mu.Lock()
		gs.members[ev.Member] = true
		r.mu.Unlock()
	case kLeave:
		gs := r.ensureGroup(ev.Group)
		r.mu.Lock()
		delete(gs.members, ev.Member)
		r.mu.Unlock()
	case kData, kRelay:
		r.handleData(ev)
	}
}

func (r *Router) handleData(ev *envelope) {
	gs := r.ensureGroup(ev.Group)
	key := dedupKey{ev.Origin, ev.MsgID}
	r.mu.Lock()
	if gs.seen[key] {
		r.mu.Unlock()
		return
	}
	gs.seen[key] = true
	members := make([]string, 0, len(gs.members))
	for m := range gs.members {
		members = append(members, m)
	}
	r.mu.Unlock()

	// Deliver to this router's registered members.
	deliver := *ev
	deliver.Kind = kDeliver
	payload := deliver.encode()
	tag := GroupTag(ev.Group)
	for _, m := range members {
		r.ep.Send(m, tag, payload)
	}

	// First-hop data is relayed to the other routers so members
	// registered elsewhere are covered; relayed data is not re-relayed
	// (the sender already reached a majority, and every router relays
	// to all others, so one live first-hop router suffices).
	if ev.Kind == kData {
		relay := *ev
		relay.Kind = kRelay
		rp := relay.encode()
		routers, err := r.cat.Values(ev.Group, rcds.AttrMcastRouter)
		if err != nil {
			return
		}
		for _, other := range routers {
			if other != r.urn {
				r.ep.Send(other, task.TagMcast, rp)
			}
		}
	}
}

// Member is one process's handle on a multicast group. It owns the
// member-side dedup of redundant router deliveries.
type Member struct {
	group string
	self  string
	cat   naming.Catalog
	ep    *comm.Endpoint
	tag   uint32

	mu      sync.Mutex
	routers []string
	nextID  uint64
	seen    map[dedupKey]bool
}

// Join registers ep's owner as a member of group with more than half
// of the group's routers (all of them, which trivially satisfies the
// majority requirement and maximises path redundancy).
func Join(cat naming.Catalog, ep *comm.Endpoint, group string) (*Member, error) {
	m := &Member{
		group: group,
		self:  ep.URN(),
		cat:   cat,
		ep:    ep,
		tag:   GroupTag(group),
		seen:  make(map[dedupKey]bool),
	}
	if err := m.RefreshRouters(); err != nil {
		return nil, err
	}
	ev := &envelope{Kind: kJoin, Group: group, Member: m.self}
	payload := ev.encode()
	m.mu.Lock()
	routers := append([]string(nil), m.routers...)
	m.mu.Unlock()
	if len(routers) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoRouters, group)
	}
	for _, r := range routers {
		if err := ep.Send(r, task.TagMcast, payload); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// RefreshRouters re-reads the group's router set from RC metadata —
// the client-side half of the paper's "notify list of processes that
// wish to be notified if the set of multicast routers changes".
func (m *Member) RefreshRouters() error {
	routers, err := m.cat.Values(m.group, rcds.AttrMcastRouter)
	if err != nil {
		return err
	}
	m.mu.Lock()
	m.routers = routers
	m.mu.Unlock()
	return nil
}

// Leave deregisters from all routers.
func (m *Member) Leave() {
	ev := &envelope{Kind: kLeave, Group: m.group, Member: m.self}
	payload := ev.encode()
	m.mu.Lock()
	routers := append([]string(nil), m.routers...)
	m.mu.Unlock()
	for _, r := range routers {
		m.ep.Send(r, task.TagMcast, payload)
	}
}

// Send multicasts data to the group, addressing more than half of the
// routers; the routers' relay mesh covers the rest.
func (m *Member) Send(appTag uint32, data []byte) error {
	m.mu.Lock()
	m.nextID++
	ev := &envelope{
		Kind: kData, Group: m.group, Origin: m.self,
		MsgID: m.nextID, AppTag: appTag, Data: data,
	}
	routers := append([]string(nil), m.routers...)
	m.mu.Unlock()
	if len(routers) == 0 {
		return fmt.Errorf("%w: %s", ErrNoRouters, m.group)
	}
	payload := ev.encode()
	majority := len(routers)/2 + 1
	var firstErr error
	sentTo := 0
	for _, r := range routers {
		if sentTo >= majority {
			break
		}
		if err := m.ep.Send(r, task.TagMcast, payload); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		sentTo++
	}
	if sentTo == 0 {
		return firstErr
	}
	return nil
}

// Recv returns the next group message (origin URN, app tag, payload),
// suppressing duplicate deliveries from redundant router paths.
func (m *Member) Recv(timeout time.Duration) (origin string, appTag uint32, data []byte, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for {
		msg, err := m.ep.RecvMatch(ctx, "", m.tag)
		if err != nil {
			return "", 0, nil, err
		}
		ev, err := decodeEnvelope(msg.Payload)
		if err != nil || ev.Kind != kDeliver || ev.Group != m.group {
			continue // foreign or malformed; tolerate open metadata world
		}
		key := dedupKey{ev.Origin, ev.MsgID}
		m.mu.Lock()
		dup := m.seen[key]
		if !dup {
			m.seen[key] = true
		}
		m.mu.Unlock()
		if dup {
			continue
		}
		return ev.Origin, ev.AppTag, ev.Data, nil
	}
}
