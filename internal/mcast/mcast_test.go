package mcast

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"snipe/internal/comm"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/testutil"
)

// waitJoined polls until every router sees n members of group.
func waitJoined(t testing.TB, group string, n int, routers ...*Router) {
	t.Helper()
	testutil.WaitFor(t, 5*time.Second, func() bool {
		for _, r := range routers {
			if r.Members(group) != n {
				return false
			}
		}
		return true
	}, fmt.Sprintf("group %s never reached %d members on every router", group, n))
}

type world struct {
	t     *testing.T
	store *rcds.Store
	cat   naming.Catalog
}

func newWorld(t *testing.T) *world {
	s := rcds.NewStore("mcast-test")
	return &world{t: t, store: s, cat: naming.StoreCatalog(s)}
}

func (w *world) router(host string) *Router {
	w.t.Helper()
	r, err := NewRouter(host, w.cat, nil)
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(r.Close)
	return r
}

func (w *world) endpoint(urn string) *comm.Endpoint {
	w.t.Helper()
	ep := comm.NewEndpoint(urn,
		comm.WithResolver(naming.NewResolver(w.cat)),
		comm.WithRetryInterval(50*time.Millisecond))
	route, err := ep.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		w.t.Fatal(err)
	}
	naming.Register(w.cat, urn, []comm.Route{route})
	w.t.Cleanup(ep.Close)
	return ep
}

func TestGroupTagStability(t *testing.T) {
	g := naming.GroupURN("weather")
	if GroupTag(g) != GroupTag(g) {
		t.Fatal("tag not deterministic")
	}
	if GroupTag(g) == GroupTag(naming.GroupURN("other")) {
		t.Fatal("distinct groups collided (unlucky hash; pick other names)")
	}
}

func TestSingleRouterBasicMulticast(t *testing.T) {
	w := newWorld(t)
	r := w.router("h1")
	group := naming.GroupURN("g1")
	if err := r.Serve(group); err != nil {
		t.Fatal(err)
	}

	members := make([]*Member, 3)
	for i := range members {
		ep := w.endpoint(fmt.Sprintf("urn:m%d", i))
		m, err := Join(w.cat, ep, group)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = m
	}
	waitJoined(t, group, len(members), r)

	if err := members[0].Send(7, []byte("to all")); err != nil {
		t.Fatal(err)
	}
	for i, m := range members {
		origin, tag, data, err := m.Recv(5 * time.Second)
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		if origin != "urn:m0" || tag != 7 || string(data) != "to all" {
			t.Fatalf("member %d got %s/%d/%q", i, origin, tag, data)
		}
	}
}

func TestSenderReceivesOwnMessage(t *testing.T) {
	w := newWorld(t)
	r := w.router("h1")
	group := naming.GroupURN("self")
	r.Serve(group)
	ep := w.endpoint("urn:solo")
	m, err := Join(w.cat, ep, group)
	if err != nil {
		t.Fatal(err)
	}
	waitJoined(t, group, 1, r)
	m.Send(1, []byte("echo"))
	origin, _, data, err := m.Recv(5 * time.Second)
	if err != nil || origin != "urn:solo" || string(data) != "echo" {
		t.Fatalf("self delivery: %s %q %v", origin, data, err)
	}
}

func TestMultiRouterDedup(t *testing.T) {
	// Three routers, members registered with all: each member must see
	// each message exactly once despite redundant delivery paths.
	w := newWorld(t)
	group := naming.GroupURN("dedup")
	routers := make([]*Router, 3)
	for i := range routers {
		routers[i] = w.router(fmt.Sprintf("h%d", i))
		routers[i].Serve(group)
	}
	epA := w.endpoint("urn:a")
	epB := w.endpoint("urn:b")
	a, err := Join(w.cat, epA, group)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Join(w.cat, epB, group)
	if err != nil {
		t.Fatal(err)
	}
	waitJoined(t, group, 2, routers...)

	const n = 10
	for i := 0; i < n; i++ {
		if err := a.Send(0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := map[byte]int{}
	for i := 0; i < n; i++ {
		_, _, data, err := b.Recv(5 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		got[data[0]]++
	}
	for k, c := range got {
		if c != 1 {
			t.Fatalf("message %d delivered %d times", k, c)
		}
	}
	// No extras lurking.
	if _, _, _, err := b.Recv(200 * time.Millisecond); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("extra delivery: %v", err)
	}
	_ = a
}

func TestRouterMinorityFailure(t *testing.T) {
	// The paper's invariant: with members registered at >1/2 of routers
	// and sends reaching >1/2 of routers, any minority of router
	// failures leaves at least one delivery path.
	w := newWorld(t)
	group := naming.GroupURN("ft")
	routers := make([]*Router, 3)
	for i := range routers {
		routers[i] = w.router(fmt.Sprintf("h%d", i))
		routers[i].Serve(group)
	}
	sender, err := Join(w.cat, w.endpoint("urn:sender"), group)
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := Join(w.cat, w.endpoint("urn:receiver"), group)
	if err != nil {
		t.Fatal(err)
	}
	waitJoined(t, group, 2, routers...)

	// Kill one router (a minority of 3).
	routers[0].Close()

	if err := sender.Send(0, []byte("survives")); err != nil {
		t.Fatal(err)
	}
	_, _, data, err := receiver.Recv(10 * time.Second)
	if err != nil || string(data) != "survives" {
		t.Fatalf("delivery after router failure: %q %v", data, err)
	}
}

func TestMaybeServeElection(t *testing.T) {
	w := newWorld(t)
	group := naming.GroupURN("elect")
	r1 := w.router("h1")
	r2 := w.router("h2")
	r3 := w.router("h3")

	// Target redundancy 2: first two volunteer, third declines.
	if ok, err := r1.MaybeServe(group, 2); err != nil || !ok {
		t.Fatalf("r1: %v %v", ok, err)
	}
	if ok, err := r2.MaybeServe(group, 2); err != nil || !ok {
		t.Fatalf("r2: %v %v", ok, err)
	}
	if ok, err := r3.MaybeServe(group, 2); err != nil || ok {
		t.Fatalf("r3 should decline: %v %v", ok, err)
	}
	// Re-election is idempotent for an existing router.
	if ok, _ := r1.MaybeServe(group, 2); !ok {
		t.Fatal("existing router should keep serving")
	}
	if got := w.store.Values(group, rcds.AttrMcastRouter); len(got) != 2 {
		t.Fatalf("router set: %v", got)
	}
	// Withdraw opens a slot.
	if err := r1.Withdraw(group); err != nil {
		t.Fatal(err)
	}
	if ok, _ := r3.MaybeServe(group, 2); !ok {
		t.Fatal("r3 should fill the vacancy")
	}
}

func TestLeaveStopsDelivery(t *testing.T) {
	w := newWorld(t)
	group := naming.GroupURN("leave")
	r := w.router("h1")
	r.Serve(group)
	a, _ := Join(w.cat, w.endpoint("urn:la"), group)
	b, err := Join(w.cat, w.endpoint("urn:lb"), group)
	if err != nil {
		t.Fatal(err)
	}
	waitJoined(t, group, 2, r)
	b.Leave()
	waitJoined(t, group, 1, r)
	a.Send(0, []byte("after leave"))
	// a still receives (it is a member); b must not.
	if _, _, _, err := a.Recv(5 * time.Second); err != nil {
		t.Fatalf("a: %v", err)
	}
	if _, _, _, err := b.Recv(200 * time.Millisecond); !errors.Is(err, comm.ErrTimeout) {
		t.Fatalf("b received after leaving: %v", err)
	}
}

func TestJoinNoRouters(t *testing.T) {
	w := newWorld(t)
	ep := w.endpoint("urn:x")
	if _, err := Join(w.cat, ep, naming.GroupURN("empty")); !errors.Is(err, ErrNoRouters) {
		t.Fatalf("want ErrNoRouters, got %v", err)
	}
}

func TestTwoGroupsSelectiveReceive(t *testing.T) {
	w := newWorld(t)
	r := w.router("h1")
	g1, g2 := naming.GroupURN("alpha"), naming.GroupURN("beta")
	r.Serve(g1)
	r.Serve(g2)
	ep := w.endpoint("urn:dual")
	m1, err := Join(w.cat, ep, g1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Join(w.cat, ep, g2)
	if err != nil {
		t.Fatal(err)
	}
	sender := w.endpoint("urn:dualsender")
	s1, _ := Join(w.cat, sender, g1)
	s2, _ := Join(w.cat, sender, g2)
	waitJoined(t, g1, 2, r)
	waitJoined(t, g2, 2, r)

	s1.Send(0, []byte("for-alpha"))
	s2.Send(0, []byte("for-beta"))
	if _, _, data, err := m1.Recv(5 * time.Second); err != nil || string(data) != "for-alpha" {
		t.Fatalf("g1: %q %v", data, err)
	}
	if _, _, data, err := m2.Recv(5 * time.Second); err != nil || string(data) != "for-beta" {
		t.Fatalf("g2: %q %v", data, err)
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	ev := &envelope{Kind: kData, Group: "g", Origin: "o", MsgID: 9, AppTag: 3, Member: "m", Data: []byte{1}}
	got, err := decodeEnvelope(ev.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != kData || got.Group != "g" || got.Origin != "o" || got.MsgID != 9 ||
		got.AppTag != 3 || got.Member != "m" || len(got.Data) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := decodeEnvelope([]byte{1, 2}); err == nil {
		t.Fatal("truncated envelope accepted")
	}
}

func BenchmarkMulticastFanout8(b *testing.B) {
	s := rcds.NewStore("bench")
	cat := naming.StoreCatalog(s)
	r, err := NewRouter("bh", cat, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	group := naming.GroupURN("bench")
	r.Serve(group)
	newEP := func(urn string) *comm.Endpoint {
		ep := comm.NewEndpoint(urn, comm.WithResolver(naming.NewResolver(cat)))
		route, _ := ep.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
		naming.Register(cat, urn, []comm.Route{route})
		return ep
	}
	sender := newEP("urn:bs")
	defer sender.Close()
	sm, err := Join(cat, sender, group)
	if err != nil {
		b.Fatal(err)
	}
	var members []*Member
	for i := 0; i < 8; i++ {
		ep := newEP(fmt.Sprintf("urn:bm%d", i))
		defer ep.Close()
		m, err := Join(cat, ep, group)
		if err != nil {
			b.Fatal(err)
		}
		members = append(members, m)
	}
	waitJoined(b, group, len(members)+1, r)
	payload := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sm.Send(0, payload); err != nil {
			b.Fatal(err)
		}
		for _, m := range members {
			if _, _, _, err := m.Recv(10 * time.Second); err != nil {
				b.Fatal(err)
			}
		}
	}
}
