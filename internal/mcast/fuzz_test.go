//go:build go1.18

package mcast

import (
	"bytes"
	"testing"
)

func FuzzDecodeEnvelope(f *testing.F) {
	for _, ev := range []*envelope{
		{Kind: 1, Group: "g", Origin: "urn:a", MsgID: 1, AppTag: 9, Member: "urn:b", Data: []byte("x")},
		{Kind: 0, Group: "", Origin: "", MsgID: 0, AppTag: 0, Member: "", Data: nil},
	} {
		f.Add(ev.encode())
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		ev, err := decodeEnvelope(b)
		if err != nil {
			return
		}
		again, err := decodeEnvelope(ev.encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Kind != ev.Kind || again.Group != ev.Group || again.Origin != ev.Origin ||
			again.MsgID != ev.MsgID || again.AppTag != ev.AppTag || again.Member != ev.Member ||
			!bytes.Equal(again.Data, ev.Data) {
			t.Fatalf("round-trip mismatch:\n%+v\n%+v", ev, again)
		}
	})
}
