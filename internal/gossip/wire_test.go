package gossip

import (
	"strings"
	"testing"
)

func TestSupersedes(t *testing.T) {
	u := func(inc, seq uint64, state uint8) Update {
		return Update{Host: "h", Inc: inc, Seq: seq, State: state}
	}
	cases := []struct {
		name string
		a, b Update
		want bool
	}{
		{"higher inc wins", u(2, 1, StateAlive), u(1, 9, StateDead), true},
		{"lower inc loses", u(1, 9, StateLeft), u(2, 1, StateAlive), false},
		{"suspect beats alive at equal inc", u(1, 1, StateSuspect), u(1, 9, StateAlive), true},
		{"alive does not refute suspect at equal inc", u(1, 9, StateAlive), u(1, 1, StateSuspect), false},
		{"dead beats suspect", u(1, 1, StateDead), u(1, 5, StateSuspect), true},
		{"left beats dead", u(1, 1, StateLeft), u(1, 5, StateDead), true},
		{"same state higher seq wins", u(1, 5, StateAlive), u(1, 4, StateAlive), true},
		{"same state same seq is not fresher", u(1, 4, StateAlive), u(1, 4, StateAlive), false},
	}
	for _, c := range cases {
		if got := c.a.Supersedes(c.b); got != c.want {
			t.Errorf("%s: Supersedes = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestGroupOf(t *testing.T) {
	if GroupOf("snipe://hosts/a", 0) != 0 || GroupOf("snipe://hosts/a", 1) != 0 {
		t.Fatal("n<=1 must map to group 0")
	}
	const n = 16
	seen := make(map[int]bool)
	for i := 0; i < 200; i++ {
		host := "snipe://hosts/h" + strings.Repeat("x", i%7) + string(rune('a'+i%26))
		g := GroupOf(host, n)
		if g < 0 || g >= n {
			t.Fatalf("GroupOf(%q, %d) = %d out of range", host, n, g)
		}
		if g != GroupOf(host, n) {
			t.Fatalf("GroupOf not deterministic for %q", host)
		}
		seen[g] = true
	}
	if len(seen) < n/2 {
		t.Fatalf("200 hosts hit only %d/%d groups; hash badly skewed", len(seen), n)
	}
}

func TestMessageRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Kind: kindPing, From: "snipe://hosts/a", ProbeID: 7},
		{Kind: kindAck, From: "snipe://hosts/b", Target: "snipe://hosts/c", ProbeID: 1 << 40},
		{Kind: kindPush, From: "snipe://hosts/a", Updates: []Update{
			{Host: "snipe://hosts/a", Inc: 3, Seq: 99, State: StateAlive, Load: 1.25},
			{Host: "snipe://hosts/b", Inc: 1, Seq: 2, State: StateSuspect, NoCat: true},
			{Host: "snipe://hosts/c", Inc: 2, Seq: 5, State: StateLeft, Load: 0.5},
		}},
	}
	for _, m := range msgs {
		got, err := DecodeMessage(m.Encode())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Kind != m.Kind || got.From != m.From || got.Target != m.Target || got.ProbeID != m.ProbeID {
			t.Fatalf("header mismatch: %+v vs %+v", got, m)
		}
		if len(got.Updates) != len(m.Updates) {
			t.Fatalf("update count %d, want %d", len(got.Updates), len(m.Updates))
		}
		for i, u := range m.Updates {
			if got.Updates[i] != u {
				t.Fatalf("update %d: %+v, want %+v", i, got.Updates[i], u)
			}
		}
	}
}

func TestDecodeMessageRejects(t *testing.T) {
	good := (&Message{Kind: kindPing, From: "a", Updates: []Update{{Host: "h", Inc: 1, Seq: 1, State: StateAlive}}}).Encode()
	cases := map[string][]byte{
		"empty":           {},
		"kind zero":       (&Message{Kind: 0, From: "a"}).Encode(),
		"kind high":       (&Message{Kind: 99, From: "a"}).Encode(),
		"truncated":       good[:len(good)-3],
		"trailing":        append(append([]byte{}, good...), 0, 0, 0, 0),
		"count overclaim": {0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff},
	}
	for name, b := range cases {
		if _, err := DecodeMessage(b); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
	// A bad state byte inside an update must be rejected too.
	bad := &Message{Kind: kindPush, From: "a", Updates: []Update{{Host: "h", Inc: 1, Seq: 1, State: 9}}}
	if _, err := DecodeMessage(bad.Encode()); err == nil {
		t.Error("invalid member state accepted")
	}
}

func TestDigestRoundTrip(t *testing.T) {
	d := &Digest{
		Group:    3,
		Reporter: "snipe://hosts/a",
		Seq:      41,
		Quorum:   true,
		Members: []Update{
			{Host: "snipe://hosts/b", Inc: 2, Seq: 17, State: StateAlive, Load: 0.5},
			{Host: "snipe://hosts/a", Inc: 1, Seq: 40, State: StateAlive, Load: 1.25, NoCat: true},
			{Host: "snipe://hosts/c", Inc: 1, Seq: 9, State: StateDead},
		},
	}
	got, err := ParseDigest(d.Format())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.Group != d.Group || got.Reporter != d.Reporter || got.Seq != d.Seq || got.Quorum != d.Quorum {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Members) != 3 {
		t.Fatalf("member count %d", len(got.Members))
	}
	// Format sorts by host.
	for i, want := range []string{"snipe://hosts/a", "snipe://hosts/b", "snipe://hosts/c"} {
		if got.Members[i].Host != want {
			t.Fatalf("member %d host %q, want %q", i, got.Members[i].Host, want)
		}
	}
	if !got.Members[0].NoCat || got.Members[1].NoCat {
		t.Fatal("NoCat trailer lost")
	}
	if got.Members[2].State != StateDead {
		t.Fatalf("state lost: %+v", got.Members[2])
	}
	if got.Members[0].Load != 1.25 || got.Members[1].Load != 0.5 {
		t.Fatal("load lost")
	}
}

func TestDigestFormatSkipsInvalidHosts(t *testing.T) {
	d := &Digest{Group: 0, Reporter: "snipe://hosts/a", Seq: 1, Members: []Update{
		{Host: "bad host", Inc: 1, Seq: 1, State: StateAlive},
		{Host: "snipe://hosts/a", Inc: 1, Seq: 1, State: StateAlive},
	}}
	got, err := ParseDigest(d.Format())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(got.Members) != 1 || got.Members[0].Host != "snipe://hosts/a" {
		t.Fatalf("invalid host not skipped: %+v", got.Members)
	}
}

func TestParseDigestRejects(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"wrong version":  "v2 0 1 1 snipe://hosts/a",
		"missing fields": "v1 0 1",
		"bad group":      "v1 x 1 1 snipe://hosts/a",
		"negative group": "v1 -1 1 1 snipe://hosts/a",
		"bad seq":        "v1 0 x 1 snipe://hosts/a",
		"bad quorum":     "v1 0 1 2 snipe://hosts/a",
		"no reporter":    "v1 0 1 1",
		"short entry":    "v1 0 1 1 snipe://hosts/a h,1,1",
		"bad state":      "v1 0 1 1 snipe://hosts/a h,1,1,z,0.5",
		"bad inc":        "v1 0 1 1 snipe://hosts/a h,x,1,a,0.5",
		"bad load":       "v1 0 1 1 snipe://hosts/a h,1,1,a,x",
		"bad trailer":    "v1 0 1 1 snipe://hosts/a h,1,1,a,0.5,z",
	}
	for name, s := range cases {
		if _, err := ParseDigest(s); err == nil {
			t.Errorf("%s: ParseDigest accepted %q", name, s)
		}
	}
}
