package gossip

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Digest is one gossip group's liveness summary: the member
// incarnation vector plus suspect/dead/left verdicts and per-member
// load, written by the group's reporter as ONE catalog assertion per
// interval. The catalog value format is
//
//	v1 <group> <digest-seq> <quorum 0|1> <reporter> <member>...
//
// with each member entry "<host>,<inc>,<seq>,<state-letter>,<load>"
// (plus a trailing ",n" when the member is catalog-unreachable). Host
// names are full host URLs; they never contain spaces or commas
// (validHostName), so the format splits unambiguously.
type Digest struct {
	Group    int    // gossip group index
	Reporter string // host URL of the member that wrote this digest
	Seq      uint64 // reporter's digest sequence, monotone per incarnation
	Quorum   bool   // reporter could see a majority of known members
	Members  []Update
}

// maxDigestMembers caps parsing: a group is tens of members; reject
// hostile values long before allocation.
const maxDigestMembers = 1 << 16

var digestStateLetter = map[uint8]string{
	StateAlive:   "a",
	StateSuspect: "s",
	StateDead:    "d",
	StateLeft:    "l",
}

var digestLetterState = map[string]uint8{
	"a": StateAlive,
	"s": StateSuspect,
	"d": StateDead,
	"l": StateLeft,
}

// Format renders the digest in its catalog value format. Members are
// sorted by host so equal group states render identically. Members
// whose host names cannot ride the format are skipped (they cannot
// occur for daemon-published hosts; the guard is for open metadata).
func (d *Digest) Format() string {
	q := "0"
	if d.Quorum {
		q = "1"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "v1 %d %d %s %s", d.Group, d.Seq, q, d.Reporter)
	members := make([]Update, 0, len(d.Members))
	for _, u := range d.Members {
		if validHostName(u.Host) {
			members = append(members, u)
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Host < members[j].Host })
	for _, u := range members {
		fmt.Fprintf(&b, " %s,%d,%d,%s,%.3f", u.Host, u.Inc, u.Seq, digestStateLetter[u.State], u.Load)
		if u.NoCat {
			b.WriteString(",n")
		}
	}
	return b.String()
}

// ParseDigest reads a catalog digest value written by Format.
func ParseDigest(s string) (*Digest, error) {
	fields := strings.Fields(s)
	if len(fields) < 4 || fields[0] != "v1" {
		return nil, fmt.Errorf("gossip: malformed digest %q", truncate(s))
	}
	var d Digest
	var err error
	if d.Group, err = strconv.Atoi(fields[1]); err != nil || d.Group < 0 {
		return nil, fmt.Errorf("gossip: digest group %q", fields[1])
	}
	if d.Seq, err = strconv.ParseUint(fields[2], 10, 64); err != nil {
		return nil, fmt.Errorf("gossip: digest seq: %w", err)
	}
	switch fields[3] {
	case "0":
	case "1":
		d.Quorum = true
	default:
		return nil, fmt.Errorf("gossip: digest quorum flag %q", fields[3])
	}
	if len(fields) < 5 {
		return nil, fmt.Errorf("gossip: digest missing reporter")
	}
	d.Reporter = fields[4]
	entries := fields[5:]
	if len(entries) > maxDigestMembers {
		return nil, fmt.Errorf("gossip: digest member count %d exceeds cap", len(entries))
	}
	d.Members = make([]Update, 0, len(entries))
	for _, entry := range entries {
		parts := strings.Split(entry, ",")
		if len(parts) != 5 && len(parts) != 6 {
			return nil, fmt.Errorf("gossip: digest member entry %q", truncate(entry))
		}
		var u Update
		u.Host = parts[0]
		if !validHostName(u.Host) {
			return nil, fmt.Errorf("gossip: digest member host %q", truncate(parts[0]))
		}
		if u.Inc, err = strconv.ParseUint(parts[1], 10, 64); err != nil {
			return nil, fmt.Errorf("gossip: digest member inc: %w", err)
		}
		if u.Seq, err = strconv.ParseUint(parts[2], 10, 64); err != nil {
			return nil, fmt.Errorf("gossip: digest member seq: %w", err)
		}
		st, ok := digestLetterState[parts[3]]
		if !ok {
			return nil, fmt.Errorf("gossip: digest member state %q", truncate(parts[3]))
		}
		u.State = st
		if u.Load, err = strconv.ParseFloat(parts[4], 64); err != nil {
			return nil, fmt.Errorf("gossip: digest member load: %w", err)
		}
		if len(parts) == 6 {
			if parts[5] != "n" {
				return nil, fmt.Errorf("gossip: digest member trailer %q", truncate(parts[5]))
			}
			u.NoCat = true
		}
		d.Members = append(d.Members, u)
	}
	return &d, nil
}

// truncate bounds hostile input in error strings.
func truncate(s string) string {
	if len(s) > 64 {
		return s[:64] + "…"
	}
	return s
}
