package gossip

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"time"

	"snipe/internal/stats"
)

// Transport carries gossip messages between agents. The daemon backs
// it with its comm endpoint (XDR-encoded over task.TagGossip); tests
// and the scale bench back it with in-process fabrics. Send may be
// called concurrently and must not block indefinitely; a failed or
// dropped send is indistinguishable from loss and is handled by the
// probe timeout machinery.
type Transport interface {
	Send(to string, m *Message) error
}

// TransportFunc adapts a function to Transport.
type TransportFunc func(to string, m *Message) error

// Send implements Transport.
func (f TransportFunc) Send(to string, m *Message) error { return f(to, m) }

// Config tunes an Agent. Self and Transport are required; zero values
// elsewhere take the defaults noted.
type Config struct {
	Self   string // this host's URL (the liveness key monitors track)
	Group  int    // this host's gossip group index
	Groups int    // cluster-wide group count (informational, default 1)

	// ProbeInterval is the cadence of the SWIM probe round (default
	// 100ms). Every derived timeout scales from it.
	ProbeInterval time.Duration
	// AckTimeout is how long a direct probe waits before indirect
	// ping-req probes are launched (default ProbeInterval/4, floor 10ms).
	AckTimeout time.Duration
	// ProbeTimeout is how long a probe waits in total — direct plus
	// indirect — before the target is suspected (default
	// ProbeInterval/2, floor 25ms).
	ProbeTimeout time.Duration
	// SuspectTimeout is how long a suspect may stay silent before it is
	// declared dead (default 2 × ProbeInterval).
	SuspectTimeout time.Duration
	// DigestInterval is the reporter's catalog write cadence (default
	// ProbeInterval) — one assertion per group per interval. Membership
	// changes trigger an immediate write, rate-limited to a quarter
	// interval.
	DigestInterval time.Duration
	// PeerRefresh is how often the Peers callback is re-consulted for
	// new group members (default 10 × ProbeInterval).
	PeerRefresh time.Duration
	// Retention is how long dead and left members stay in the table —
	// and so in digests, where monitors learn of the verdict — before
	// being dropped (default 20 × DigestInterval).
	Retention time.Duration
	// IndirectProbes is the SWIM k: how many helpers receive a ping-req
	// when a direct probe times out (default 2).
	IndirectProbes int
	// PushFanout is how many random alive peers receive an immediate
	// push when a member changes state (default 3).
	PushFanout int

	// Transport carries messages to peers (required).
	Transport Transport
	// Peers lists the host URLs of this agent's group (self included or
	// not, either works); consulted at Start and every PeerRefresh.
	// Optional: members are also learned from incoming gossip.
	Peers func() ([]string, error)
	// WriteDigest publishes a group digest to the catalog. Optional: an
	// agent without it never takes reporter duty (and gossips nothing
	// to the catalog tier).
	WriteDigest func(*Digest) error
	// Observer receives accepted member state changes first-hand — the
	// direct-event feed for a colocated liveness.Monitor. Called
	// without agent locks held. Optional.
	Observer func(Update)
	// Gate injects partitions at the gossip layer: a non-nil error for
	// (from, to) drops the send, regardless of transport. Optional.
	Gate func(from, to string) error
	// Load supplies the figure gossiped in this member's updates and
	// carried to placement via the digest. Optional.
	Load func() float64
}

func (c *Config) fill() {
	if c.Groups <= 0 {
		c.Groups = 1
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 100 * time.Millisecond
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = maxDur(c.ProbeInterval/4, 10*time.Millisecond)
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = maxDur(c.ProbeInterval/2, 25*time.Millisecond)
	}
	if c.SuspectTimeout <= 0 {
		c.SuspectTimeout = 2 * c.ProbeInterval
	}
	if c.DigestInterval <= 0 {
		c.DigestInterval = c.ProbeInterval
	}
	if c.PeerRefresh <= 0 {
		c.PeerRefresh = 10 * c.ProbeInterval
	}
	if c.Retention <= 0 {
		c.Retention = 20 * c.DigestInterval
	}
	if c.IndirectProbes <= 0 {
		c.IndirectProbes = 2
	}
	if c.PushFanout <= 0 {
		c.PushFanout = 3
	}
}

// bootInc derives an agent's starting incarnation from the boot clock.
// A host that crashes and restarts after its peers expunged the dead
// record (Retention) rejoins a table that remembers nothing to refute:
// were the incarnation a constant, the reborn agent would never hear
// the old death verdict, and any monitor still holding the frozen
// verdict would keep it Dead for roughly its previous uptime (seq
// restarts at 1 and cannot out-sequence the old record). A wall-clock
// incarnation supersedes every claim from a previous life by
// construction; the refutation path (Inc = claim + 1) keeps working on
// top of it.
func bootInc() uint64 { return uint64(time.Now().UnixNano()) }

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// member is the agent's record of one group member (itself included).
type member struct {
	Update
	changedAt time.Time // when the current state was adopted
}

// probe is one outstanding probe this agent originated.
type probe struct {
	target   string
	start    time.Time
	indirect bool // ping-req helpers already launched
}

// relay is one ping this agent sent on another member's behalf.
type relay struct {
	origin  string // who asked
	probeID uint64 // the ORIGIN's probe id, echoed back on the relayed ack
	target  string
	start   time.Time
}

// send is one planned outgoing message; sends are executed outside the
// agent lock.
type send struct {
	to  string
	msg *Message
}

// Agent is one host's gossip participant: prober, suspicion state
// machine, and — when elected — the group's digest reporter.
type Agent struct {
	cfg Config

	mu        sync.Mutex
	members   map[string]*member // by host URL, self included
	self      *member
	order     []string // shuffled probe ring (round-robin with reshuffle)
	orderIdx  int
	probes    map[uint64]*probe
	relays    map[uint64]*relay
	probeID   uint64
	digestSeq uint64
	lastWrite time.Time // last digest write attempt
	dirty     bool      // membership changed since the last digest
	urgent    bool      // a state RANK changed: flush the digest now
	started   bool
	closed    bool
	rng       *rand.Rand

	done chan struct{}
	wg   sync.WaitGroup

	metrics     *stats.Registry
	mProbes     *stats.Counter
	mPingReqs   *stats.Counter
	mPushes     *stats.Counter
	mRx         *stats.Counter
	mSuspects   *stats.Counter
	mDeads      *stats.Counter
	mRefutes    *stats.Counter
	mDigests    *stats.Counter
	mDigestErrs *stats.Counter
	mGateDrops  *stats.Counter
}

// NewAgent builds an agent; call Start to join the group.
func NewAgent(cfg Config) (*Agent, error) {
	if !validHostName(cfg.Self) {
		return nil, errors.New("gossip: invalid self host name")
	}
	if cfg.Transport == nil {
		return nil, errors.New("gossip: transport required")
	}
	cfg.fill()
	a := &Agent{
		cfg:     cfg,
		members: make(map[string]*member),
		probes:  make(map[uint64]*probe),
		relays:  make(map[uint64]*relay),
		rng:     rand.New(rand.NewSource(rand.Int63())),
		done:    make(chan struct{}),
		metrics: stats.NewRegistry(),
	}
	a.self = &member{Update: Update{Host: cfg.Self, Inc: bootInc(), Seq: 1, State: StateAlive}, changedAt: time.Now()}
	a.members[cfg.Self] = a.self
	a.mProbes = a.metrics.Counter("probes")
	a.mPingReqs = a.metrics.Counter("ping_reqs")
	a.mPushes = a.metrics.Counter("pushes")
	a.mRx = a.metrics.Counter("rx_messages")
	a.mSuspects = a.metrics.Counter("suspects")
	a.mDeads = a.metrics.Counter("deads")
	a.mRefutes = a.metrics.Counter("refutes")
	a.mDigests = a.metrics.Counter("digests")
	a.mDigestErrs = a.metrics.Counter("digest_errors")
	a.mGateDrops = a.metrics.Counter("gate_drops")
	return a, nil
}

// Start joins the group: seeds membership from Peers and begins the
// probe loop.
func (a *Agent) Start() error {
	a.mu.Lock()
	if a.started || a.closed {
		a.mu.Unlock()
		return errors.New("gossip: agent already started or closed")
	}
	a.started = true
	a.mu.Unlock()
	a.refreshPeers()
	a.wg.Add(1)
	go a.run()
	return nil
}

// Close leaves the group cleanly: the agent gossips its own departure
// (StateLeft), writes a final digest if it holds reporter duty, and
// stops. Peers and monitors see a planned exit, never a crash.
func (a *Agent) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	wasReporter := a.reporterLocked() == a.cfg.Self
	a.self.Seq++
	a.self.State = StateLeft
	a.self.changedAt = time.Now()
	goodbye := a.pushPlanLocked(a.self.Update)
	var d *Digest
	if wasReporter && a.cfg.WriteDigest != nil {
		a.digestSeq++
		d = a.buildDigestLocked()
	}
	close(a.done)
	a.mu.Unlock()
	a.deliver(goodbye)
	if d != nil {
		a.cfg.WriteDigest(d)
	}
	a.wg.Wait()
}

// Stop kills the agent silently — the crash-simulation path: no
// goodbye gossip, no final digest. Peers must discover the death from
// probe silence alone.
func (a *Agent) Stop() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	close(a.done)
	a.mu.Unlock()
	a.wg.Wait()
}

// Self returns this member's current gossiped claim.
func (a *Agent) Self() Update {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.self.Update
}

// Members snapshots the agent's member table (self included).
func (a *Agent) Members() []Update {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stateLocked()
}

// Reporter returns the member this agent currently believes holds the
// group's digest-writing duty ("" when no candidate is alive).
func (a *Agent) Reporter() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reporterLocked()
}

// Metrics returns the agent's metric registry.
func (a *Agent) Metrics() *stats.Registry { return a.metrics }

// Deliver ingests one gossip message from the transport. Safe for
// concurrent use; replies and relays are sent before returning.
func (a *Agent) Deliver(m *Message) {
	if m == nil || m.From == a.cfg.Self {
		return
	}
	a.mRx.Inc()
	now := time.Now()
	var out []send
	var events []Update
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	for _, u := range m.Updates {
		a.applyLocked(u, now, &out, &events)
	}
	switch m.Kind {
	case kindPing:
		out = append(out, send{m.From, &Message{Kind: kindAck, From: a.cfg.Self, ProbeID: m.ProbeID, Updates: a.stateLocked()}})
	case kindPingReq:
		if validHostName(m.Target) && m.Target != a.cfg.Self {
			a.probeID++
			a.relays[a.probeID] = &relay{origin: m.From, probeID: m.ProbeID, target: m.Target, start: now}
			out = append(out, send{m.Target, &Message{Kind: kindPing, From: a.cfg.Self, ProbeID: a.probeID, Updates: a.stateLocked()}})
		}
	case kindAck:
		if r, ok := a.relays[m.ProbeID]; ok && m.From == r.target && m.Target == "" {
			// Our helper ping came back: relay the ack to the origin under
			// ITS probe id, with Target naming who answered.
			delete(a.relays, m.ProbeID)
			out = append(out, send{r.origin, &Message{Kind: kindAck, From: a.cfg.Self, Target: r.target, ProbeID: r.probeID, Updates: a.stateLocked()}})
		} else if p, ok := a.probes[m.ProbeID]; ok {
			if m.From == p.target || m.Target == p.target {
				delete(a.probes, m.ProbeID)
			}
		}
	case kindPush:
		// Merge-only; already done above.
	}
	a.mu.Unlock()
	a.emit(events)
	a.deliver(out)
	if len(events) > 0 {
		// A state change arrived between run-loop ticks; if we are the
		// reporter, flush it to the catalog now instead of letting it
		// age up to a quarter interval.
		a.digestTick(now)
	}
}

// run is the agent's clock: probes fire every ProbeInterval; timeout
// scans, digest duty and membership refresh ride a four-times-finer
// sub-tick so detection latency is not quantized to whole intervals.
func (a *Agent) run() {
	defer a.wg.Done()
	tick := a.cfg.ProbeInterval / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	phase := 0
	nextRefresh := time.Now().Add(a.cfg.PeerRefresh)
	for {
		select {
		case <-a.done:
			return
		case <-ticker.C:
			now := time.Now()
			var out []send
			var events []Update
			phase++
			if phase%4 == 0 {
				out = append(out, a.probeTick(now)...)
			}
			a.mu.Lock()
			a.timeoutsLocked(now, &out, &events)
			a.mu.Unlock()
			a.emit(events)
			a.deliver(out)
			a.digestTick(now)
			if a.cfg.Peers != nil && now.After(nextRefresh) {
				a.refreshPeers()
				nextRefresh = now.Add(a.cfg.PeerRefresh)
			}
		}
	}
}

// probeTick advances this member's sequence number and launches the
// next round-robin probe.
func (a *Agent) probeTick(now time.Time) []send {
	var load float64
	if a.cfg.Load != nil {
		load = a.cfg.Load()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.self.Seq++
	a.self.Load = load
	target := a.nextTargetLocked()
	if target == "" {
		return nil
	}
	a.probeID++
	a.probes[a.probeID] = &probe{target: target, start: now}
	a.mProbes.Inc()
	return []send{{target, &Message{Kind: kindPing, From: a.cfg.Self, ProbeID: a.probeID, Updates: a.stateLocked()}}}
}

// nextTargetLocked walks the shuffled probe ring, skipping members no
// longer probeable and members already under an outstanding probe, and
// reshuffles at each wrap (the SWIM round-robin randomization).
func (a *Agent) nextTargetLocked() string {
	pending := make(map[string]bool, len(a.probes))
	for _, p := range a.probes {
		pending[p.target] = true
	}
	for tries := 0; tries < 2; tries++ {
		for a.orderIdx < len(a.order) {
			host := a.order[a.orderIdx]
			a.orderIdx++
			m, ok := a.members[host]
			if ok && host != a.cfg.Self && (m.State == StateAlive || m.State == StateSuspect) && !pending[host] {
				return host
			}
		}
		a.reshuffleLocked()
	}
	return ""
}

// insertRingLocked adds a freshly learned member to the probe ring at
// a uniformly random position in the unvisited remainder. Appending in
// learning order would hand every agent the same (sorted) ring, making
// the whole group sweep targets in lockstep — time-to-first-probe of a
// failed host becomes O(group size) intervals instead of O(1) expected,
// and detection latency with it.
func (a *Agent) insertRingLocked(host string) {
	a.order = append(a.order, host)
	if rest := len(a.order) - a.orderIdx; rest > 1 {
		j := a.orderIdx + a.rng.Intn(rest)
		last := len(a.order) - 1
		a.order[j], a.order[last] = a.order[last], a.order[j]
	}
}

// reshuffleLocked rebuilds the probe ring from probeable members.
func (a *Agent) reshuffleLocked() {
	a.order = a.order[:0]
	for host, m := range a.members {
		if host != a.cfg.Self && (m.State == StateAlive || m.State == StateSuspect) {
			a.order = append(a.order, host)
		}
	}
	sort.Strings(a.order) // deterministic base before the shuffle
	a.rng.Shuffle(len(a.order), func(i, j int) { a.order[i], a.order[j] = a.order[j], a.order[i] })
	a.orderIdx = 0
}

// timeoutsLocked ages probes toward indirection and suspicion, and
// suspects toward death, and expires retained verdicts and stale
// relays. Caller holds a.mu.
func (a *Agent) timeoutsLocked(now time.Time, out *[]send, events *[]Update) {
	for id, p := range a.probes {
		age := now.Sub(p.start)
		if !p.indirect && age > a.cfg.AckTimeout {
			p.indirect = true
			for _, helper := range a.helpersLocked(p.target) {
				a.mPingReqs.Inc()
				*out = append(*out, send{helper, &Message{Kind: kindPingReq, From: a.cfg.Self, Target: p.target, ProbeID: id, Updates: a.stateLocked()}})
			}
		}
		if age > a.cfg.ProbeTimeout {
			delete(a.probes, id)
			if m, ok := a.members[p.target]; ok && m.State == StateAlive {
				a.applyLocked(Update{Host: p.target, Inc: m.Inc, Seq: m.Seq, State: StateSuspect, Load: m.Load, NoCat: m.NoCat}, now, out, events)
			}
		}
	}
	for host, m := range a.members {
		switch m.State {
		case StateSuspect:
			if now.Sub(m.changedAt) > a.cfg.SuspectTimeout {
				a.applyLocked(Update{Host: host, Inc: m.Inc, Seq: m.Seq, State: StateDead, Load: m.Load, NoCat: m.NoCat}, now, out, events)
			}
		case StateDead, StateLeft:
			if host != a.cfg.Self && now.Sub(m.changedAt) > a.cfg.Retention {
				delete(a.members, host)
			}
		}
	}
	for id, r := range a.relays {
		if now.Sub(r.start) > a.cfg.ProbeTimeout {
			delete(a.relays, id)
		}
	}
}

// helpersLocked picks up to IndirectProbes random alive members,
// excluding self and the probe target.
func (a *Agent) helpersLocked(target string) []string {
	candidates := make([]string, 0, len(a.members))
	for host, m := range a.members {
		if host != a.cfg.Self && host != target && m.State == StateAlive {
			candidates = append(candidates, host)
		}
	}
	sort.Strings(candidates)
	a.rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	if len(candidates) > a.cfg.IndirectProbes {
		candidates = candidates[:a.cfg.IndirectProbes]
	}
	return candidates
}

// applyLocked merges one gossiped claim into the member table,
// planning refutations, dissemination pushes and observer events.
// Caller holds a.mu.
func (a *Agent) applyLocked(u Update, now time.Time, out *[]send, events *[]Update) {
	if !validHostName(u.Host) {
		return
	}
	if u.Host == a.cfg.Self {
		// A claim about ourselves. Suspicion, death or departure at our
		// incarnation (or later — a rejoin after a stale verdict) is
		// refuted by bumping the incarnation, which supersedes the claim
		// everywhere it has spread.
		if u.State != StateAlive && u.Inc >= a.self.Inc && a.self.State == StateAlive {
			a.self.Inc = u.Inc + 1
			a.self.Seq = 1
			a.self.changedAt = now
			a.mRefutes.Inc()
			a.dirty = true
			*out = append(*out, a.pushPlanLocked(a.self.Update)...)
		}
		return
	}
	m, ok := a.members[u.Host]
	if !ok {
		m = &member{Update: Update{Host: u.Host, State: StateAlive}, changedAt: now}
		m.Update = u
		a.members[u.Host] = m
		a.insertRingLocked(u.Host)
		a.dirty = true
		*events = append(*events, u)
		if u.State != StateAlive {
			a.urgent = true
			a.countTransitionLocked(u.State)
			*out = append(*out, a.pushPlanLocked(u)...)
		}
		return
	}
	if !u.Supersedes(m.Update) {
		return
	}
	old := m.State
	m.Update = u
	if u.State != old {
		m.changedAt = now
		a.dirty = true
		a.urgent = true
		a.countTransitionLocked(u.State)
		*events = append(*events, u)
		// State changes spread faster than the probe cadence: push to a
		// few random peers immediately (suspicions so refutation starts
		// early; recoveries so false verdicts die early).
		*out = append(*out, a.pushPlanLocked(u)...)
	}
}

func (a *Agent) countTransitionLocked(state uint8) {
	switch state {
	case StateSuspect:
		a.mSuspects.Inc()
	case StateDead:
		a.mDeads.Inc()
	}
}

// pushPlanLocked plans an immediate dissemination of u to up to
// PushFanout random alive peers, plus — always — the group's elected
// reporter: the reporter owns the digest write that carries this
// change to the catalog tier, so routing the push straight to it makes
// detection latency probe + timeout + one write rather than waiting on
// an epidemic round to reach it. Caller holds a.mu.
func (a *Agent) pushPlanLocked(u Update) []send {
	peers := make([]string, 0, len(a.members))
	for host, m := range a.members {
		if host != a.cfg.Self && host != u.Host && m.State == StateAlive {
			peers = append(peers, host)
		}
	}
	sort.Strings(peers)
	a.rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	if len(peers) > a.cfg.PushFanout {
		peers = peers[:a.cfg.PushFanout]
	}
	if rep := a.reporterLocked(); rep != "" && rep != a.cfg.Self && rep != u.Host {
		repIn := false
		for _, p := range peers {
			if p == rep {
				repIn = true
				break
			}
		}
		if !repIn {
			peers = append(peers, rep)
		}
	}
	out := make([]send, 0, len(peers))
	for _, p := range peers {
		a.mPushes.Inc()
		out = append(out, send{p, &Message{Kind: kindPush, From: a.cfg.Self, Updates: []Update{u}}})
	}
	return out
}

// stateLocked snapshots the member table for piggybacking.
func (a *Agent) stateLocked() []Update {
	out := make([]Update, 0, len(a.members))
	for _, m := range a.members {
		out = append(out, m.Update)
	}
	return out
}

// reporterLocked elects the group's digest writer: the lowest-named
// alive member that can reach the catalog. If every alive member is
// catalog-blind the lowest-named alive member is drafted anyway, so
// the group keeps retrying rather than going silent by agreement.
func (a *Agent) reporterLocked() string {
	best, bestAny := "", ""
	for host, m := range a.members {
		if m.State != StateAlive {
			continue
		}
		if bestAny == "" || host < bestAny {
			bestAny = host
		}
		if !m.NoCat && (best == "" || host < best) {
			best = host
		}
	}
	if best != "" {
		return best
	}
	return bestAny
}

// digestTick performs reporter duty: if this agent is the elected
// reporter and a digest is due — the interval elapsed, a state rank
// changed (suspicions and deaths must not wait out the rate limit:
// rank flips are already bounded by the protocol's own timeouts, and
// each one deferred is pure detection latency for every digest
// consumer), or membership refreshed at least a quarter-interval ago —
// it writes the group's digest as one catalog assertion. A failed
// write marks this member NoCat and gossips it, handing duty to the
// next-ranked member; a later success clears the flag.
func (a *Agent) digestTick(now time.Time) {
	if a.cfg.WriteDigest == nil {
		return
	}
	a.mu.Lock()
	if a.closed || a.reporterLocked() != a.cfg.Self {
		a.mu.Unlock()
		return
	}
	sinceWrite := now.Sub(a.lastWrite)
	due := sinceWrite >= a.cfg.DigestInterval || a.urgent ||
		(a.dirty && sinceWrite >= a.cfg.DigestInterval/4)
	if a.self.NoCat && sinceWrite < 4*a.cfg.DigestInterval {
		// Catalog-blind: retry slowly; a healthy peer has taken over.
		due = false
	}
	if !due {
		a.mu.Unlock()
		return
	}
	a.digestSeq++
	d := a.buildDigestLocked()
	a.lastWrite = now
	a.dirty = false
	a.urgent = false
	a.mu.Unlock()

	err := a.cfg.WriteDigest(d)

	var pushes []send
	a.mu.Lock()
	if err != nil {
		a.mDigestErrs.Inc()
		if !a.self.NoCat {
			a.self.NoCat = true
			a.self.Seq++
			a.dirty = true
			pushes = a.pushPlanLocked(a.self.Update)
		}
	} else {
		a.mDigests.Inc()
		if a.self.NoCat {
			a.self.NoCat = false
			a.self.Seq++
			a.dirty = true
			pushes = a.pushPlanLocked(a.self.Update)
		}
	}
	a.mu.Unlock()
	a.deliver(pushes)
}

// buildDigestLocked folds the member table into a digest. Quorum is
// the split-brain guard: when this reporter can see at most half of
// the group's non-departed members alive, the digest is flagged
// minority and consumers must not take its death verdicts at face
// value. Caller holds a.mu.
func (a *Agent) buildDigestLocked() *Digest {
	alive, total := 0, 0
	for _, m := range a.members {
		if m.State == StateLeft {
			continue
		}
		total++
		if m.State == StateAlive {
			alive++
		}
	}
	return &Digest{
		Group:    a.cfg.Group,
		Reporter: a.cfg.Self,
		Seq:      a.digestSeq,
		Quorum:   alive*2 > total,
		Members:  a.stateLocked(),
	}
}

// refreshPeers folds the Peers callback's current listing into the
// member table; new names join as alive at incarnation zero, so any
// genuine claim about them supersedes the placeholder.
func (a *Agent) refreshPeers() {
	if a.cfg.Peers == nil {
		return
	}
	names, err := a.cfg.Peers()
	if err != nil {
		return
	}
	now := time.Now()
	a.mu.Lock()
	for _, host := range names {
		if host == a.cfg.Self || !validHostName(host) {
			continue
		}
		if _, ok := a.members[host]; !ok {
			a.members[host] = &member{Update: Update{Host: host, State: StateAlive}, changedAt: now}
			a.insertRingLocked(host)
		}
	}
	a.mu.Unlock()
}

// deliver executes planned sends outside the agent lock, applying the
// partition gate.
func (a *Agent) deliver(out []send) {
	for _, s := range out {
		if a.cfg.Gate != nil && a.cfg.Gate(a.cfg.Self, s.to) != nil {
			a.mGateDrops.Inc()
			continue
		}
		a.cfg.Transport.Send(s.to, s.msg)
	}
}

// emit invokes the observer outside the agent lock.
func (a *Agent) emit(events []Update) {
	if a.cfg.Observer == nil {
		return
	}
	for _, u := range events {
		a.cfg.Observer(u)
	}
}
