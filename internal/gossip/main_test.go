package gossip

import (
	"testing"

	"snipe/internal/testutil"
)

func TestMain(m *testing.M) { testutil.Main(m) }
