//go:build go1.18

package gossip

import (
	"testing"
)

func FuzzDecodeMessage(f *testing.F) {
	for _, m := range []*Message{
		{Kind: kindPing, From: "snipe://hosts/a", ProbeID: 1},
		{Kind: kindAck, From: "snipe://hosts/b", Target: "snipe://hosts/c", ProbeID: 1 << 40},
		{Kind: kindPingReq, From: "snipe://hosts/a", Target: "snipe://hosts/b", ProbeID: 7},
		{Kind: kindPush, From: "snipe://hosts/a", Updates: []Update{
			{Host: "snipe://hosts/a", Inc: 3, Seq: 99, State: StateAlive, Load: 1.25},
			{Host: "snipe://hosts/b", Inc: 1, Seq: 2, State: StateLeft, NoCat: true},
		}},
	} {
		f.Add(m.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeMessage(b)
		if err != nil {
			return
		}
		again, err := DecodeMessage(m.Encode())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Kind != m.Kind || again.From != m.From || again.Target != m.Target ||
			again.ProbeID != m.ProbeID || len(again.Updates) != len(m.Updates) {
			t.Fatalf("round-trip mismatch:\n%+v\n%+v", m, again)
		}
		for i := range m.Updates {
			if again.Updates[i] != m.Updates[i] {
				t.Fatalf("update %d mismatch: %+v vs %+v", i, m.Updates[i], again.Updates[i])
			}
		}
	})
}

func FuzzParseDigest(f *testing.F) {
	for _, d := range []*Digest{
		{Group: 0, Reporter: "snipe://hosts/a", Seq: 1, Quorum: true, Members: []Update{
			{Host: "snipe://hosts/a", Inc: 1, Seq: 10, State: StateAlive, Load: 0.5},
		}},
		{Group: 3, Reporter: "snipe://hosts/r", Seq: 1 << 40, Members: []Update{
			{Host: "snipe://hosts/a", Inc: 2, Seq: 1, State: StateDead},
			{Host: "snipe://hosts/b", Inc: 1, Seq: 7, State: StateSuspect, NoCat: true},
		}},
	} {
		f.Add(d.Format())
	}
	f.Add("")
	f.Add("v1 0 1 1")
	f.Add("v1 0 1 1 r h,1,1,a,0.5,n extra,garbage")
	f.Add("v1 -1 18446744073709551616 2 r")
	f.Fuzz(func(t *testing.T, s string) {
		d, err := ParseDigest(s)
		if err != nil {
			return
		}
		again, err := ParseDigest(d.Format())
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if again.Group != d.Group || again.Seq != d.Seq || again.Quorum != d.Quorum ||
			len(again.Members) != len(d.Members) {
			t.Fatalf("round-trip mismatch:\n%+v\n%+v", d, again)
		}
	})
}
