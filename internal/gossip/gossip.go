// Package gossip is SNIPE's hierarchical failure-detection tier: a
// SWIM-style gossip protocol (Das et al., DSN 2002) run WITHIN small
// groups of hosts, whose elected reporter writes a single group digest
// into the replicated catalog per interval — collapsing the catalog's
// liveness traffic from O(N) per-host heartbeat writes to O(N/groupSize)
// digest writes while keeping detection latency flat (§2.2 of the
// paper's scalability argument).
//
// Each host runs an Agent. Agents probe their group peers round-robin
// over a shuffled ring (ping → ack); a missed ack triggers indirect
// probes through k helpers (ping-req); a host that answers nobody is
// suspected, and a suspect that stays silent past the suspicion timeout
// is declared dead. Every ping and ack piggybacks the sender's full
// member table — groups are small (tens of members), so full-state
// anti-entropy converges in one round trip, the hybrid proactive-push/
// reactive-pull exchange of the fog-metadata model. State changes are
// additionally pushed to a few random peers immediately, so suspicion
// and refutation spread faster than the probe cadence.
//
// Incarnation numbers arbitrate conflicting claims: a suspected member
// that hears of its own suspicion bumps its incarnation and gossips an
// alive refutation, which supersedes any claim at the older incarnation.
// At equal incarnations the more advanced state wins (left > dead >
// suspect > alive), and within a state the higher sequence number.
//
// The group's reporter — its lowest-named alive member that can reach
// the catalog — folds the member table into a Digest and writes it as
// ONE catalog assertion per interval (immediately, rate-limited, when
// membership changes). A reporter whose catalog writes fail marks
// itself NoCat and gossips that, so the next-ranked member takes over
// without waiting for the old reporter to die. A reporter that can see
// less than half its group flags the digest as minority; consumers
// (liveness.Monitor) treat a minority digest's death verdicts as mere
// suspicion, so an isolated ex-reporter cannot declare the majority
// dead.
package gossip

import (
	"hash/fnv"
	"strings"
)

// Member states carried in gossip updates and digests. The zero value
// is invalid so decoders can reject absent fields.
const (
	StateAlive   uint8 = 1
	StateSuspect uint8 = 2
	StateDead    uint8 = 3
	StateLeft    uint8 = 4 // clean departure, gossiped by the member itself
)

// StateName names a member state for logs and digests.
func StateName(s uint8) string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	case StateLeft:
		return "left"
	default:
		return "invalid"
	}
}

// Update is one member's gossiped liveness claim: who, at which
// incarnation and sequence, in what state, under what load. NoCat marks
// a member that cannot currently reach the catalog and must not be
// elected reporter.
type Update struct {
	Host  string // host URL (the liveness key monitors track)
	Inc   uint64 // incarnation: bumped only by the member itself, to refute
	Seq   uint64 // per-incarnation sequence: bumped every probe round
	State uint8
	Load  float64 // running tasks per CPU, the placement input
	NoCat bool    // member cannot reach the catalog; skip for reporter duty
}

// stateRank orders states for conflict resolution at equal
// incarnations: a member's own departure outranks a death verdict,
// which outranks suspicion, which outranks mere liveness.
func stateRank(s uint8) int {
	switch s {
	case StateLeft:
		return 4
	case StateDead:
		return 3
	case StateSuspect:
		return 2
	case StateAlive:
		return 1
	default:
		return 0
	}
}

// Supersedes reports whether u is strictly fresher evidence than v for
// the same host: higher incarnation wins outright; at equal
// incarnations the higher state rank wins (suspicion is not refuted by
// an alive claim at the same incarnation — refutation requires an
// incarnation bump); within a state the higher sequence number wins.
func (u Update) Supersedes(v Update) bool {
	if u.Inc != v.Inc {
		return u.Inc > v.Inc
	}
	if ru, rv := stateRank(u.State), stateRank(v.State); ru != rv {
		return ru > rv
	}
	return u.Seq > v.Seq
}

// GroupOf hashes a host name into one of n gossip groups. Group
// membership must be a pure function of the host name so every daemon
// derives the same partition without coordination.
func GroupOf(host string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(host))
	return int(h.Sum32() % uint32(n))
}

// validHostName reports whether a host string can ride the digest's
// space/comma-delimited catalog format.
func validHostName(host string) bool {
	return host != "" && !strings.ContainsAny(host, " ,\n\t")
}
