package gossip

import (
	"fmt"

	"snipe/internal/xdr"
)

// Message kinds — the gossip wire discriminants (taguniq space "gossip
// message kind"). All gossip traffic rides one comm tag (task.TagGossip)
// with the kind as the first wire field.
const (
	// kindPing is a direct probe; the receiver answers with kindAck.
	kindPing uint32 = 1
	// kindAck answers a ping. Target empty: a direct reply to the
	// prober. Target set: the ack is relayed by a ping-req helper on
	// behalf of Target, and ProbeID is the ORIGIN's probe id.
	kindAck uint32 = 2
	// kindPingReq asks a helper to probe Target on the sender's behalf
	// (the SWIM indirect probe): the helper pings Target itself and, on
	// ack, relays a kindAck with Target set back to the origin.
	kindPingReq uint32 = 3
	// kindPush carries unsolicited state updates — the fast
	// dissemination path for new suspicions, refutations and departures.
	kindPush uint32 = 4
)

// Wire-decode caps: host names are short URLs; a group has at most a
// few hundred members, so a hostile update count is rejected well
// before allocation.
const (
	maxWireHost    = 4096
	maxWireUpdates = 4096
)

// Message is one gossip datagram. Every message piggybacks the
// sender's view of the group (Updates), so any exchange is also an
// anti-entropy round.
type Message struct {
	Kind    uint32
	From    string // sender host URL
	Target  string // kindPingReq: host to probe; kindAck: host answered for
	ProbeID uint64 // correlates acks with outstanding probes
	Updates []Update
}

// Encode renders the message for the wire.
func (m *Message) Encode() []byte {
	e := xdr.NewEncoder(64 + 48*len(m.Updates))
	e.PutUint32(m.Kind)
	e.PutString(m.From)
	e.PutString(m.Target)
	e.PutUint64(m.ProbeID)
	e.PutUint32(uint32(len(m.Updates)))
	for _, u := range m.Updates {
		e.PutString(u.Host)
		e.PutUint64(u.Inc)
		e.PutUint64(u.Seq)
		e.PutUint8(u.State)
		e.PutFloat64(u.Load)
		e.PutBool(u.NoCat)
	}
	return e.Bytes()
}

// DecodeMessage reads a message written by Encode, bounding every
// variable-length field against hostile input.
func DecodeMessage(b []byte) (Message, error) {
	d := xdr.NewDecoder(b)
	var m Message
	var err error
	if m.Kind, err = d.Uint32(); err != nil {
		return m, err
	}
	if m.Kind < kindPing || m.Kind > kindPush {
		return m, fmt.Errorf("gossip: unknown message kind %d", m.Kind)
	}
	if m.From, err = d.StringMax(maxWireHost); err != nil {
		return m, err
	}
	if m.Target, err = d.StringMax(maxWireHost); err != nil {
		return m, err
	}
	if m.ProbeID, err = d.Uint64(); err != nil {
		return m, err
	}
	n, err := d.Uint32()
	if err != nil {
		return m, err
	}
	if n > maxWireUpdates {
		return m, fmt.Errorf("gossip: update count %d exceeds cap %d", n, maxWireUpdates)
	}
	// Each update costs at least 30 encoded bytes; fail fast on counts
	// the remaining payload cannot hold before preallocating.
	if int64(n)*30 > int64(d.Remaining()) {
		return m, fmt.Errorf("gossip: update count %d exceeds remaining %d bytes", n, d.Remaining())
	}
	m.Updates = make([]Update, 0, n)
	for i := uint32(0); i < n; i++ {
		var u Update
		if u.Host, err = d.StringMax(maxWireHost); err != nil {
			return m, err
		}
		if u.Inc, err = d.Uint64(); err != nil {
			return m, err
		}
		if u.Seq, err = d.Uint64(); err != nil {
			return m, err
		}
		if u.State, err = d.Uint8(); err != nil {
			return m, err
		}
		if u.State < StateAlive || u.State > StateLeft {
			return m, fmt.Errorf("gossip: invalid member state %d", u.State)
		}
		if u.Load, err = d.Float64(); err != nil {
			return m, err
		}
		if u.NoCat, err = d.Bool(); err != nil {
			return m, err
		}
		m.Updates = append(m.Updates, u)
	}
	if err := d.Finish(); err != nil {
		return m, err
	}
	return m, nil
}
