package gossip

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// mesh is an in-process transport connecting agents by host name.
// Every send round-trips through the wire codec, so agent tests also
// exercise Encode/Decode, and severed (from, to) directions model
// asymmetric partitions.
type mesh struct {
	mu      sync.Mutex
	agents  map[string]*Agent
	severed map[[2]string]bool
}

func newMesh() *mesh {
	return &mesh{agents: make(map[string]*Agent), severed: make(map[[2]string]bool)}
}

func (m *mesh) register(host string, a *Agent) {
	m.mu.Lock()
	m.agents[host] = a
	m.mu.Unlock()
}

func (m *mesh) sever(from, to string) {
	m.mu.Lock()
	m.severed[[2]string{from, to}] = true
	m.mu.Unlock()
}

func (m *mesh) severBoth(a, b string) {
	m.sever(a, b)
	m.sever(b, a)
}

func (m *mesh) transport(from string) Transport {
	return TransportFunc(func(to string, msg *Message) error {
		m.mu.Lock()
		cut := m.severed[[2]string{from, to}]
		ag := m.agents[to]
		m.mu.Unlock()
		if cut {
			return errors.New("mesh: severed")
		}
		if ag == nil {
			return errors.New("mesh: unknown peer")
		}
		dm, err := DecodeMessage(msg.Encode())
		if err != nil {
			return err
		}
		ag.Deliver(&dm)
		return nil
	})
}

// digestLog captures one agent's digest writes and injects failures.
type digestLog struct {
	mu  sync.Mutex
	ds  []*Digest
	err error
}

func (l *digestLog) write(d *Digest) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	l.ds = append(l.ds, d)
	return nil
}

func (l *digestLog) setErr(err error) {
	l.mu.Lock()
	l.err = err
	l.mu.Unlock()
}

func (l *digestLog) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ds)
}

func (l *digestLog) last() *Digest {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ds) == 0 {
		return nil
	}
	return l.ds[len(l.ds)-1]
}

func (l *digestLog) all() []*Digest {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Digest(nil), l.ds...)
}

const testProbe = 20 * time.Millisecond

// spawnGroup builds and starts one agent per host on the mesh. The
// timeouts are generous relative to the synchronous in-process
// delivery so a loaded CI scheduler cannot manufacture false suspects.
func spawnGroup(t *testing.T, m *mesh, hosts []string, mut func(host string, cfg *Config)) map[string]*Agent {
	t.Helper()
	agents := make(map[string]*Agent, len(hosts))
	for _, h := range hosts {
		cfg := Config{
			Self:           h,
			Transport:      m.transport(h),
			ProbeInterval:  testProbe,
			AckTimeout:     8 * time.Millisecond,
			ProbeTimeout:   50 * time.Millisecond,
			SuspectTimeout: 60 * time.Millisecond,
			DigestInterval: testProbe,
			Peers:          func() ([]string, error) { return hosts, nil },
		}
		if mut != nil {
			mut(h, &cfg)
		}
		ag, err := NewAgent(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.register(h, ag)
		agents[h] = ag
	}
	for _, ag := range agents {
		if err := ag.Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, ag := range agents {
			ag.Stop()
		}
	})
	return agents
}

func waitFor(t *testing.T, d time.Duration, desc string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", desc)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// view returns ag's current claim about host, if any.
func view(ag *Agent, host string) (Update, bool) {
	for _, u := range ag.Members() {
		if u.Host == host {
			return u, true
		}
	}
	return Update{}, false
}

func sees(ag *Agent, host string, state uint8) bool {
	u, ok := view(ag, host)
	return ok && u.State == state
}

// seesLive reports whether ag holds a GENUINE alive claim for host:
// peer-listing placeholders sit at incarnation 0 and count as alive,
// so warmup waits must insist on a gossiped claim (incarnation >= 1)
// before injecting faults — otherwise the fault lands before any
// gossip has flowed and the test exercises nothing.
func seesLive(ag *Agent, host string) bool {
	u, ok := view(ag, host)
	return ok && u.State == StateAlive && u.Inc >= 1
}

func TestNewAgentValidates(t *testing.T) {
	tr := TransportFunc(func(string, *Message) error { return nil })
	if _, err := NewAgent(Config{Transport: tr}); err == nil {
		t.Error("empty self accepted")
	}
	if _, err := NewAgent(Config{Self: "has space", Transport: tr}); err == nil {
		t.Error("space in self accepted")
	}
	if _, err := NewAgent(Config{Self: "snipe://hosts/a"}); err == nil {
		t.Error("missing transport accepted")
	}
}

func TestGroupConvergesAliveWithoutFalseSuspects(t *testing.T) {
	m := newMesh()
	hosts := []string{"snipe://hosts/a", "snipe://hosts/b", "snipe://hosts/c", "snipe://hosts/d", "snipe://hosts/e"}
	agents := spawnGroup(t, m, hosts, nil)
	waitFor(t, 5*time.Second, "full alive convergence", func() bool {
		for _, ag := range agents {
			n := 0
			for _, u := range ag.Members() {
				if u.State != StateAlive || u.Inc < 1 {
					return false
				}
				n++
			}
			if n != len(hosts) {
				return false
			}
		}
		return true
	})
	// Let several probe rounds pass in steady state: a healthy group
	// must produce zero suspicions.
	time.Sleep(5 * testProbe)
	for h, ag := range agents {
		if n := ag.Metrics().Counter("suspects").Value(); n != 0 {
			t.Errorf("%s raised %d false suspicion(s)", h, n)
		}
	}
}

func TestCrashDetection(t *testing.T) {
	m := newMesh()
	hosts := []string{"snipe://hosts/a", "snipe://hosts/b", "snipe://hosts/c"}
	agents := spawnGroup(t, m, hosts, nil)
	victim := "snipe://hosts/c"
	waitFor(t, 5*time.Second, "victim alive everywhere", func() bool {
		return seesLive(agents["snipe://hosts/a"], victim) &&
			seesLive(agents["snipe://hosts/b"], victim)
	})
	agents[victim].Stop() // crash: no goodbye
	waitFor(t, 5*time.Second, "victim declared dead", func() bool {
		return sees(agents["snipe://hosts/a"], victim, StateDead) &&
			sees(agents["snipe://hosts/b"], victim, StateDead)
	})
}

func TestCleanLeaveIsNotSuspected(t *testing.T) {
	m := newMesh()
	hosts := []string{"snipe://hosts/a", "snipe://hosts/b", "snipe://hosts/c"}
	agents := spawnGroup(t, m, hosts, nil)
	leaver := "snipe://hosts/c"
	waitFor(t, 5*time.Second, "leaver alive everywhere", func() bool {
		return seesLive(agents["snipe://hosts/a"], leaver) &&
			seesLive(agents["snipe://hosts/b"], leaver)
	})
	agents[leaver].Close()
	waitFor(t, 5*time.Second, "leaver marked left", func() bool {
		return sees(agents["snipe://hosts/a"], leaver, StateLeft) &&
			sees(agents["snipe://hosts/b"], leaver, StateLeft)
	})
	time.Sleep(5 * testProbe)
	for _, h := range hosts[:2] {
		if n := agents[h].Metrics().Counter("suspects").Value(); n != 0 {
			t.Errorf("%s suspected a cleanly departed member %d time(s)", h, n)
		}
	}
}

func TestRefutationOnFalseSuspicion(t *testing.T) {
	m := newMesh()
	a, b := "snipe://hosts/a", "snipe://hosts/b"
	agents := spawnGroup(t, m, []string{a, b}, nil)
	waitFor(t, 5*time.Second, "genuine alive claim", func() bool {
		return seesLive(agents[b], a)
	})
	u, _ := view(agents[b], a)
	// A third party spreads a false suspicion of a at its current
	// incarnation. b adopts it (suspicion beats alive at equal inc);
	// b's next exchange with a carries it; a refutes by bumping inc.
	agents[b].Deliver(&Message{Kind: kindPush, From: "snipe://hosts/zz", Updates: []Update{
		{Host: a, Inc: u.Inc, Seq: u.Seq + 1000, State: StateSuspect},
	}})
	waitFor(t, 5*time.Second, "refutation adopted", func() bool {
		v, ok := view(agents[b], a)
		return ok && v.State == StateAlive && v.Inc > u.Inc
	})
	if n := agents[a].Metrics().Counter("refutes").Value(); n == 0 {
		t.Error("refutes counter did not advance")
	}
}

func TestRebirthAfterDeadVerdict(t *testing.T) {
	m := newMesh()
	a, b := "snipe://hosts/a", "snipe://hosts/b"
	hosts := []string{a, b}
	agents := spawnGroup(t, m, hosts, nil)
	waitFor(t, 5*time.Second, "mutual genuine alive", func() bool {
		return seesLive(agents[a], b) && seesLive(agents[b], a)
	})
	agents[a].Stop()
	waitFor(t, 5*time.Second, "a declared dead", func() bool { return sees(agents[b], a, StateDead) })

	// The host restarts while the group still holds a dead verdict for
	// it. The reborn agent's boot-derived incarnation supersedes the
	// verdict outright (and refutation backstops a clock that didn't
	// advance); either way the group must re-accept it as alive.
	reborn, err := NewAgent(Config{
		Self: a, Transport: m.transport(a),
		ProbeInterval: testProbe, AckTimeout: 8 * time.Millisecond,
		ProbeTimeout: 50 * time.Millisecond, SuspectTimeout: 60 * time.Millisecond,
		Peers: func() ([]string, error) { return hosts, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	m.register(a, reborn)
	if err := reborn.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(reborn.Stop)
	waitFor(t, 5*time.Second, "rebirth accepted", func() bool {
		v, ok := view(agents[b], a)
		return ok && v.State == StateAlive && v.Inc >= 2
	})
}

func TestRebornAgentSupersedesPreviousLife(t *testing.T) {
	// A reborn agent must start at an incarnation that outranks anything
	// its previous life could have gossiped, even when the old verdict
	// has been expunged everywhere (so refutation never triggers). The
	// boot-derived incarnation guarantees this without persistence.
	tr := TransportFunc(func(string, *Message) error { return nil })
	host := "snipe://hosts/phoenix"
	old, err := NewAgent(Config{Self: host, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	reborn, err := NewAgent(Config{Self: host, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	prev := old.Self()
	verdict := Update{Host: host, Inc: prev.Inc, Seq: prev.Seq + 1000, State: StateDead}
	if !reborn.Self().Supersedes(verdict) {
		t.Fatalf("reborn claim %+v does not supersede previous life's dead verdict %+v",
			reborn.Self(), verdict)
	}
}

func TestIndirectProbeBridgesAsymmetricLoss(t *testing.T) {
	m := newMesh()
	a, b, c := "snipe://hosts/a", "snipe://hosts/b", "snipe://hosts/c"
	agents := spawnGroup(t, m, []string{a, b, c}, nil)
	waitFor(t, 5*time.Second, "full alive", func() bool {
		return seesLive(agents[a], b) && seesLive(agents[b], a) &&
			seesLive(agents[a], c) && seesLive(agents[b], c) &&
			seesLive(agents[c], a) && seesLive(agents[c], b)
	})
	// a can no longer reach b directly (so a's pings to b are lost and
	// b's probes of a lose their acks), but both still reach c: every
	// probe across the broken edge must succeed via ping-req through c.
	m.sever(a, b)
	waitFor(t, 5*time.Second, "an indirect probe across the broken edge", func() bool {
		return agents[a].Metrics().Counter("ping_reqs").Value() > 0 ||
			agents[b].Metrics().Counter("ping_reqs").Value() > 0
	})
	time.Sleep(10 * testProbe)
	if !sees(agents[a], b, StateAlive) || !sees(agents[b], a, StateAlive) {
		t.Fatal("asymmetric loss produced a false verdict despite an indirect path")
	}
	for _, h := range []string{a, b} {
		if n := agents[h].Metrics().Counter("suspects").Value(); n != 0 {
			t.Errorf("%s suspected across a bridgeable edge %d time(s)", h, n)
		}
	}
}

func TestReporterElectionAndDigestContent(t *testing.T) {
	m := newMesh()
	hosts := []string{"snipe://hosts/a", "snipe://hosts/b", "snipe://hosts/c"}
	logs := map[string]*digestLog{}
	agents := spawnGroup(t, m, hosts, func(h string, cfg *Config) {
		l := &digestLog{}
		logs[h] = l
		cfg.Group = 7
		cfg.WriteDigest = l.write
	})
	waitFor(t, 5*time.Second, "full-membership digest from the lowest member", func() bool {
		d := logs["snipe://hosts/a"].last()
		return d != nil && len(d.Members) == len(hosts)
	})
	d := logs["snipe://hosts/a"].last()
	if d.Group != 7 || d.Reporter != "snipe://hosts/a" || !d.Quorum {
		t.Fatalf("digest header: %+v", d)
	}
	for _, u := range d.Members {
		if u.State != StateAlive {
			t.Fatalf("healthy group digest carries %s for %s", StateName(u.State), u.Host)
		}
	}
	for _, h := range hosts {
		if ag := agents[h]; ag.Reporter() != "snipe://hosts/a" {
			t.Fatalf("%s elects reporter %q", h, ag.Reporter())
		}
	}
	if logs["snipe://hosts/b"].count() != 0 || logs["snipe://hosts/c"].count() != 0 {
		t.Fatal("non-reporters wrote digests")
	}
}

func TestReporterFailoverOnDeath(t *testing.T) {
	m := newMesh()
	hosts := []string{"snipe://hosts/a", "snipe://hosts/b", "snipe://hosts/c"}
	logs := map[string]*digestLog{}
	agents := spawnGroup(t, m, hosts, func(h string, cfg *Config) {
		l := &digestLog{}
		logs[h] = l
		cfg.WriteDigest = l.write
	})
	waitFor(t, 5*time.Second, "initial reporter writing", func() bool {
		d := logs["snipe://hosts/a"].last()
		return d != nil && len(d.Members) == len(hosts)
	})
	// The reporter crashes mid-interval. The next-lowest survivor must
	// take over the digest and publish the death with quorum — and no
	// survivor may ever be reported suspect or dead along the way.
	agents["snipe://hosts/a"].Stop()
	waitFor(t, 5*time.Second, "successor digest carries the verdict", func() bool {
		d := logs["snipe://hosts/b"].last()
		if d == nil || !d.Quorum {
			return false
		}
		for _, u := range d.Members {
			if u.Host == "snipe://hosts/a" && u.State == StateDead {
				return true
			}
		}
		return false
	})
	for h, l := range logs {
		for _, d := range l.all() {
			for _, u := range d.Members {
				if u.Host != "snipe://hosts/a" && u.State != StateAlive && u.State != StateLeft {
					t.Fatalf("digest from %s reported survivor %s as %s", h, u.Host, StateName(u.State))
				}
			}
		}
	}
}

func TestNoCatHandoverAndRecovery(t *testing.T) {
	m := newMesh()
	hosts := []string{"snipe://hosts/a", "snipe://hosts/b", "snipe://hosts/c"}
	logs := map[string]*digestLog{}
	spawnGroup(t, m, hosts, func(h string, cfg *Config) {
		l := &digestLog{}
		logs[h] = l
		cfg.WriteDigest = l.write
	})
	// Phase 1: the elected reporter is catalog-blind; duty must pass to
	// the next-ranked member, whose digests flag the blind member NoCat.
	logs["snipe://hosts/a"].setErr(errors.New("catalog unreachable"))
	waitFor(t, 5*time.Second, "handover to b with NoCat flag", func() bool {
		d := logs["snipe://hosts/b"].last()
		if d == nil {
			return false
		}
		for _, u := range d.Members {
			if u.Host == "snipe://hosts/a" && u.NoCat {
				return true
			}
		}
		return false
	})

	// Phase 2: a's catalog heals, then b and c go blind too. With every
	// member NoCat the group drafts its lowest member anyway rather than
	// going silent; a's retry succeeds and clears its flag.
	logs["snipe://hosts/a"].setErr(nil)
	logs["snipe://hosts/b"].setErr(errors.New("catalog unreachable"))
	logs["snipe://hosts/c"].setErr(errors.New("catalog unreachable"))
	before := logs["snipe://hosts/a"].count()
	waitFor(t, 10*time.Second, "drafted reporter recovers", func() bool {
		if logs["snipe://hosts/a"].count() <= before {
			return false
		}
		d := logs["snipe://hosts/a"].last()
		for _, u := range d.Members {
			if u.Host == "snipe://hosts/a" {
				return !u.NoCat
			}
		}
		return false
	})
}

func TestMinorityReporterFlagsDigest(t *testing.T) {
	m := newMesh()
	hosts := []string{"snipe://hosts/a", "snipe://hosts/b", "snipe://hosts/c"}
	logs := map[string]*digestLog{}
	spawnGroup(t, m, hosts, func(h string, cfg *Config) {
		l := &digestLog{}
		logs[h] = l
		cfg.WriteDigest = l.write
	})
	waitFor(t, 5*time.Second, "initial digest", func() bool {
		d := logs["snipe://hosts/a"].last()
		return d != nil && len(d.Members) == len(hosts) && d.Quorum
	})
	// Cut the reporter off from both peers (gossip only — its catalog
	// writes still land). It will declare the majority dead, but its
	// digests must carry the minority flag so consumers downgrade the
	// verdicts; the majority side's digests keep quorum and report the
	// isolated member's death authoritatively.
	m.severBoth("snipe://hosts/a", "snipe://hosts/b")
	m.severBoth("snipe://hosts/a", "snipe://hosts/c")
	waitFor(t, 5*time.Second, "minority digest flagged", func() bool {
		d := logs["snipe://hosts/a"].last()
		if d == nil || d.Quorum {
			return false
		}
		dead := 0
		for _, u := range d.Members {
			if u.Host != "snipe://hosts/a" && u.State == StateDead {
				dead++
			}
		}
		return dead == 2
	})
	waitFor(t, 5*time.Second, "majority side keeps quorum", func() bool {
		d := logs["snipe://hosts/b"].last()
		if d == nil || !d.Quorum {
			return false
		}
		for _, u := range d.Members {
			if u.Host == "snipe://hosts/a" && u.State == StateDead {
				return true
			}
		}
		return false
	})
}

func TestObserverSeesTransitions(t *testing.T) {
	m := newMesh()
	a, b := "snipe://hosts/a", "snipe://hosts/b"
	var mu sync.Mutex
	var seen []Update
	agents := spawnGroup(t, m, []string{a, b}, func(h string, cfg *Config) {
		if h == a {
			cfg.Observer = func(u Update) {
				mu.Lock()
				seen = append(seen, u)
				mu.Unlock()
			}
		}
	})
	waitFor(t, 5*time.Second, "mutual genuine alive", func() bool {
		return seesLive(agents[a], b) && seesLive(agents[b], a)
	})
	agents[b].Stop()
	waitFor(t, 5*time.Second, "observer saw suspicion and death", func() bool {
		mu.Lock()
		defer mu.Unlock()
		var suspect, dead bool
		for _, u := range seen {
			if u.Host == b && u.State == StateSuspect {
				suspect = true
			}
			if u.Host == b && u.State == StateDead {
				dead = true
			}
		}
		return suspect && dead
	})
}
