//go:build go1.18

package task

import (
	"bytes"
	"testing"

	"snipe/internal/xdr"
)

func fuzzSpecBytes(s Spec) []byte {
	e := xdr.NewEncoder(128)
	s.Encode(e)
	return e.Bytes()
}

func FuzzDecodeSpec(f *testing.F) {
	f.Add(fuzzSpecBytes(Spec{Program: "worker", Args: []string{"-n", "4"}}))
	f.Add(fuzzSpecBytes(Spec{
		Program: "mobile", CodeURL: "snipe://files/prog.img",
		Req:        Requirements{Arch: "sparc", MinMemoryMB: 64, Host: "tcp://h:1", Playground: true},
		NotifyList: []string{"urn:parent"},
		Checkpoint: []byte{1, 2, 3}, SeqState: []byte{4, 5},
	}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, 'h', 'i', 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := DecodeSpec(xdr.NewDecoder(b))
		if err != nil {
			return
		}
		again, err := DecodeSpec(xdr.NewDecoder(fuzzSpecBytes(s)))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Program != s.Program || len(again.Args) != len(s.Args) ||
			again.Req != s.Req || again.CodeURL != s.CodeURL ||
			!bytes.Equal(again.Checkpoint, s.Checkpoint) || !bytes.Equal(again.SeqState, s.SeqState) {
			t.Fatalf("round-trip mismatch:\n%+v\n%+v", s, again)
		}
	})
}

func FuzzDecodeStateChange(f *testing.F) {
	sc := StateChange{URN: "urn:t", From: StateRunning, To: StateExited, Host: "tcp://h:1"}
	f.Add(EncodeStateChange(sc))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		got, err := DecodeStateChange(b)
		if err != nil {
			return
		}
		again, err := DecodeStateChange(EncodeStateChange(got))
		if err != nil || again != got {
			t.Fatalf("round-trip mismatch: %+v vs %+v (err %v)", got, again, err)
		}
	})
}
