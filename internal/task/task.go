// Package task defines the SNIPE process model (paper §3.3, §5.2.3,
// §5.5): tasks with global URNs, lifecycle states, environment
// requirements, notify lists, signals, and cooperative
// checkpoint/restore hooks used by suspension and migration.
//
// Substitution note (DESIGN.md): the 1998 daemons fork/exec'd native
// programs; here a task is a registered Go function (or a playground VM
// program) run on a goroutine with its own communications endpoint. The
// lifecycle, signal, notify and checkpoint semantics — which are what
// the paper's experiments exercise — are implemented in full.
package task

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"snipe/internal/comm"
	"snipe/internal/naming"
	"snipe/internal/xdr"
)

// State is a task lifecycle state. State changes are reported to the
// task's notify list and recorded in RC metadata (AttrState).
type State string

// Task states.
const (
	StatePending      State = "pending"
	StateRunning      State = "running"
	StateSuspended    State = "suspended"
	StateCheckpointed State = "checkpointed"
	StateMigrating    State = "migrating"
	StateExited       State = "exited"
	StateFailed       State = "failed"
)

// Signal is an asynchronous signal deliverable to a task, the paper's
// "delivery of signals to local tasks".
type Signal int32

// Well-known signals. Values above SigUser are application-defined.
const (
	SigKill    Signal = 1
	SigSuspend Signal = 2
	SigResume  Signal = 3
	SigUser    Signal = 64
)

// Well-known message tags used by SNIPE system protocols. Application
// tags should stay below TagSystemBase.
const (
	TagSystemBase uint32 = 0xF0000000
	// TagNotify carries task state-change notifications (§5.2.3).
	TagNotify = TagSystemBase + 1
	// TagSpawnReq and TagSpawnResp implement remote spawn (§5.5).
	TagSpawnReq  = TagSystemBase + 2
	TagSpawnResp = TagSystemBase + 3
	// TagSignal delivers a signal to a remote task via its daemon.
	TagSignal = TagSystemBase + 4
	// TagStatusReq and TagStatusResp query a daemon's task table.
	TagStatusReq  = TagSystemBase + 5
	TagStatusResp = TagSystemBase + 6
	// TagMcast carries multicast group relay traffic.
	TagMcast = TagSystemBase + 7
	// TagMigrateReq asks a daemon to adopt a migrating task.
	TagMigrateReq  = TagSystemBase + 8
	TagMigrateResp = TagSystemBase + 9
	// TagFile carries file sink/source data (§5.9).
	TagFile = TagSystemBase + 10
	// TagRM carries resource-manager requests and replies.
	TagRM     = TagSystemBase + 11
	TagRMResp = TagSystemBase + 12
	// TagCheckpointReq asks a daemon to checkpoint one of its tasks and
	// return the portable spec (the first half of a migration).
	TagCheckpointReq  = TagSystemBase + 13
	TagCheckpointResp = TagSystemBase + 14
	// TagReleaseReq ends a checkpointed task's tenure on its old host
	// (the close of the §5.6 relay window).
	TagReleaseReq = TagSystemBase + 15
	// TagStatsReq and TagStatsResp fetch a daemon's metrics snapshot —
	// the console's window into a running host (§3.7).
	TagStatsReq  = TagSystemBase + 16
	TagStatsResp = TagSystemBase + 17
	// TagGossip carries SWIM-style liveness gossip between host daemons
	// (see internal/gossip): ping/ack probes, indirect ping-req relays
	// and membership-state pushes.
	TagGossip = TagSystemBase + 18
)

// Errors of the task layer.
var (
	// ErrMigrated is returned by a task function that has saved a
	// checkpoint in response to a migration request; the daemon treats
	// it as a clean handoff rather than an exit.
	ErrMigrated = errors.New("task: checkpointed for migration")
	// ErrKilled is returned when a task was killed.
	ErrKilled = errors.New("task: killed")
	// ErrUnknownProgram indicates a spawn of an unregistered program.
	ErrUnknownProgram = errors.New("task: unknown program")
)

// Requirements describes the environment a program needs (§5.5): "it
// may run only on certain CPU types, it may require a certain amount of
// memory or CPU time or local disk space".
type Requirements struct {
	Arch        string // required host architecture ("" = any)
	MinMemoryMB int    // minimum host memory
	Host        string // pinned host URL ("" = any)
	Playground  bool   // must run inside a playground sandbox
}

// Spec describes a process to spawn: the program (a registered task
// function name, or a code URL for playground execution), its
// arguments, requirements, and the initial notify list.
type Spec struct {
	Program    string
	Args       []string
	Req        Requirements
	NotifyList []string
	CodeURL    string // mobile code location for playground programs
	Checkpoint []byte // restore state for migrated/restarted tasks
	SeqState   []byte // encoded comm.SequenceState carried by migration
}

// Encode serialises the spec.
func (s *Spec) Encode(e *xdr.Encoder) {
	e.PutString(s.Program)
	e.PutStringSlice(s.Args)
	e.PutString(s.Req.Arch)
	e.PutUint32(uint32(s.Req.MinMemoryMB))
	e.PutString(s.Req.Host)
	e.PutBool(s.Req.Playground)
	e.PutStringSlice(s.NotifyList)
	e.PutString(s.CodeURL)
	e.PutBytes(s.Checkpoint)
	e.PutBytes(s.SeqState)
}

// Per-field wire-decode caps handed to the xdr *Max decoders: names,
// URLs and argv entries are short strings; checkpoint and sequence
// state can be large (a migrating task's full state) but must stay
// bounded.
const (
	maxWireString = 4096
	maxWireList   = 4096     // argv / notify-list entries
	maxWireState  = 64 << 20 // checkpoint and comm sequence state
)

// DecodeSpec reads a spec written by Encode.
func DecodeSpec(d *xdr.Decoder) (Spec, error) {
	var s Spec
	var err error
	if s.Program, err = d.StringMax(maxWireString); err != nil {
		return s, err
	}
	if s.Args, err = d.StringSliceMax(maxWireList, maxWireString); err != nil {
		return s, err
	}
	if s.Req.Arch, err = d.StringMax(maxWireString); err != nil {
		return s, err
	}
	var mem uint32
	if mem, err = d.Uint32(); err != nil {
		return s, err
	}
	s.Req.MinMemoryMB = int(mem)
	if s.Req.Host, err = d.StringMax(maxWireString); err != nil {
		return s, err
	}
	if s.Req.Playground, err = d.Bool(); err != nil {
		return s, err
	}
	if s.NotifyList, err = d.StringSliceMax(maxWireList, maxWireString); err != nil {
		return s, err
	}
	if s.CodeURL, err = d.StringMax(maxWireString); err != nil {
		return s, err
	}
	if s.Checkpoint, err = d.BytesCopyMax(maxWireState); err != nil {
		return s, err
	}
	if len(s.Checkpoint) == 0 {
		s.Checkpoint = nil
	}
	if s.SeqState, err = d.BytesCopyMax(maxWireState); err != nil {
		return s, err
	}
	if len(s.SeqState) == 0 {
		s.SeqState = nil
	}
	return s, nil
}

// Func is the body of a SNIPE task. It runs on its own goroutine with
// its own endpoint; returning ends the task (nil = StateExited, error =
// StateFailed, ErrMigrated = handoff).
type Func func(ctx *Context) error

// Registry maps program names to task functions, playing the role of
// the executable search path on a 1997 host.
type Registry struct {
	mu sync.RWMutex
	m  map[string]Func
}

// NewRegistry returns an empty program registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[string]Func)}
}

// Register installs a program. Registering an existing name replaces
// it.
func (r *Registry) Register(name string, fn Func) {
	r.mu.Lock()
	r.m[name] = fn
	r.mu.Unlock()
}

// Lookup finds a program.
func (r *Registry) Lookup(name string) (Func, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.m[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownProgram, name)
	}
	return fn, nil
}

// Names returns the registered program names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for k := range r.m {
		out = append(out, k)
	}
	return out
}

// Context is a running task's view of its environment.
type Context struct {
	urn      string
	host     string
	spec     Spec
	endpoint *comm.Endpoint
	catalog  naming.Catalog // RC metadata access for the task

	mu         sync.Mutex
	cond       *sync.Cond
	suspended  bool
	killed     bool
	checkpoint []byte // state saved by the task for migration
	ckptReq    chan struct{}
	signals    chan Signal
	done       chan struct{}
	doneOnce   sync.Once
}

// NewContext builds a task context; used by daemons and tests.
func NewContext(urn, host string, spec Spec, ep *comm.Endpoint) *Context {
	c := &Context{
		urn:      urn,
		host:     host,
		spec:     spec,
		endpoint: ep,
		ckptReq:  make(chan struct{}, 1),
		signals:  make(chan Signal, 16),
		done:     make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// URN returns the task's global name.
func (c *Context) URN() string { return c.urn }

// Host returns the URL of the host the task is running on.
func (c *Context) Host() string { return c.host }

// Args returns the task's arguments.
func (c *Context) Args() []string { return c.spec.Args }

// Spec returns the task's spec.
func (c *Context) Spec() Spec { return c.spec }

// Endpoint exposes the task's communications endpoint.
func (c *Context) Endpoint() *comm.Endpoint { return c.endpoint }

// SetCatalog installs the task's RC metadata access (daemon side).
func (c *Context) SetCatalog(cat naming.Catalog) { c.catalog = cat }

// Catalog returns the task's RC metadata access — the client library's
// resource-location facility (§3.4). Nil for contexts built without a
// daemon.
func (c *Context) Catalog() naming.Catalog { return c.catalog }

// RestoredState returns the checkpoint this task was restarted from,
// or nil for a fresh start.
func (c *Context) RestoredState() []byte { return c.spec.Checkpoint }

// Done is closed when the task has been killed.
func (c *Context) Done() <-chan struct{} { return c.done }

// Signals delivers user signals (>= SigUser) to the task.
func (c *Context) Signals() <-chan Signal { return c.signals }

// CheckpointRequested is signalled when the daemon wants the task to
// checkpoint (for suspension to disk or migration). The task should
// call SaveCheckpoint and return ErrMigrated.
func (c *Context) CheckpointRequested() <-chan struct{} { return c.ckptReq }

// SaveCheckpoint records the task's serialised state for the daemon to
// collect.
func (c *Context) SaveCheckpoint(state []byte) {
	c.mu.Lock()
	c.checkpoint = append([]byte(nil), state...)
	c.mu.Unlock()
}

// TakeCheckpoint returns the saved state (daemon side).
func (c *Context) TakeCheckpoint() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checkpoint
}

// Send sends a message from this task.
func (c *Context) Send(dst string, tag uint32, payload []byte) error {
	c.pausePoint()
	return c.endpoint.Send(dst, tag, payload)
}

// Recv receives the next message for this task, honouring suspension.
func (c *Context) Recv(timeout time.Duration) (*comm.Message, error) {
	c.pausePoint()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return c.endpoint.Recv(ctx)
}

// RecvMatch receives selectively, honouring suspension.
func (c *Context) RecvMatch(src string, tag uint32, timeout time.Duration) (*comm.Message, error) {
	c.pausePoint()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return c.endpoint.RecvMatch(ctx, src, tag)
}

// pausePoint blocks while the task is suspended — the cooperative
// suspension point used by communicating tasks. Compute-bound tasks
// should call CheckPause in their loops.
func (c *Context) pausePoint() {
	c.mu.Lock()
	for c.suspended && !c.killed {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// CheckPause is a cooperative scheduling point: it blocks while
// suspended and reports whether the task has been killed.
func (c *Context) CheckPause() (killed bool) {
	c.pausePoint()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed
}

// Deliver routes a signal to the task (daemon side).
func (c *Context) Deliver(sig Signal) {
	switch sig {
	case SigKill:
		c.mu.Lock()
		c.killed = true
		c.suspended = false
		c.cond.Broadcast()
		c.mu.Unlock()
		c.doneOnce.Do(func() { close(c.done) })
	case SigSuspend:
		c.mu.Lock()
		c.suspended = true
		c.mu.Unlock()
	case SigResume:
		c.mu.Lock()
		c.suspended = false
		c.cond.Broadcast()
		c.mu.Unlock()
	default:
		select {
		case c.signals <- sig:
		default: // signal queue full: drop, as POSIX would coalesce
		}
	}
}

// RequestCheckpoint asks the task to checkpoint (daemon side).
func (c *Context) RequestCheckpoint() {
	select {
	case c.ckptReq <- struct{}{}:
	default:
	}
}

// Suspended reports whether the task is currently suspended.
func (c *Context) Suspended() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.suspended
}

// StateChange is the payload of a TagNotify message.
type StateChange struct {
	URN  string
	From State
	To   State
	Host string
}

// EncodeStateChange serialises a notification.
func EncodeStateChange(sc StateChange) []byte {
	e := xdr.NewEncoder(64)
	e.PutString(sc.URN)
	e.PutString(string(sc.From))
	e.PutString(string(sc.To))
	e.PutString(sc.Host)
	return e.Bytes()
}

// DecodeStateChange reads a notification payload.
func DecodeStateChange(b []byte) (StateChange, error) {
	d := xdr.NewDecoder(b)
	var sc StateChange
	var err error
	if sc.URN, err = d.StringMax(maxWireString); err != nil {
		return sc, err
	}
	var from, to string
	if from, err = d.StringMax(maxWireString); err != nil {
		return sc, err
	}
	if to, err = d.StringMax(maxWireString); err != nil {
		return sc, err
	}
	sc.From, sc.To = State(from), State(to)
	if sc.Host, err = d.StringMax(maxWireString); err != nil {
		return sc, err
	}
	return sc, nil
}
