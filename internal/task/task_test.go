package task

import (
	"errors"
	"testing"
	"time"

	"snipe/internal/xdr"
)

func TestSpecEncodeDecode(t *testing.T) {
	s := Spec{
		Program: "worker",
		Args:    []string{"a", "b"},
		Req: Requirements{
			Arch: "go-sim", MinMemoryMB: 64, Host: "snipe://hosts/h1", Playground: true,
		},
		NotifyList: []string{"urn:snipe:process:c"},
		CodeURL:    "urn:snipe:file:code",
		Checkpoint: []byte{1, 2, 3},
		SeqState:   []byte{4},
	}
	e := xdr.NewEncoder(0)
	s.Encode(e)
	got, err := DecodeSpec(xdr.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != "worker" || len(got.Args) != 2 || got.Req.Arch != "go-sim" ||
		got.Req.MinMemoryMB != 64 || !got.Req.Playground ||
		len(got.NotifyList) != 1 || got.CodeURL != "urn:snipe:file:code" ||
		len(got.Checkpoint) != 3 || len(got.SeqState) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestSpecEmptyCheckpointDecodesNil(t *testing.T) {
	s := Spec{Program: "p"}
	e := xdr.NewEncoder(0)
	s.Encode(e)
	got, err := DecodeSpec(xdr.NewDecoder(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Checkpoint != nil || got.SeqState != nil {
		t.Fatal("empty checkpoint should decode as nil")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	called := false
	r.Register("p1", func(ctx *Context) error { called = true; return nil })
	fn, err := r.Lookup("p1")
	if err != nil {
		t.Fatal(err)
	}
	fn(nil)
	if !called {
		t.Fatal("function not invoked")
	}
	if _, err := r.Lookup("missing"); !errors.Is(err, ErrUnknownProgram) {
		t.Fatalf("want ErrUnknownProgram, got %v", err)
	}
	if n := len(r.Names()); n != 1 {
		t.Fatalf("Names = %d", n)
	}
}

func TestContextKill(t *testing.T) {
	ctx := NewContext("urn:t", "snipe://hosts/h", Spec{}, nil)
	done := make(chan struct{})
	go func() {
		<-ctx.Done()
		close(done)
	}()
	ctx.Deliver(SigKill)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Done not closed by SigKill")
	}
	if !ctx.CheckPause() {
		t.Fatal("CheckPause should report killed")
	}
	ctx.Deliver(SigKill) // idempotent
}

func TestContextSuspendResume(t *testing.T) {
	ctx := NewContext("urn:t", "h", Spec{}, nil)
	ctx.Deliver(SigSuspend)
	if !ctx.Suspended() {
		t.Fatal("not suspended")
	}
	resumed := make(chan struct{})
	go func() {
		ctx.CheckPause() // blocks while suspended
		close(resumed)
	}()
	select {
	case <-resumed:
		t.Fatal("CheckPause returned while suspended")
	case <-time.After(50 * time.Millisecond):
	}
	ctx.Deliver(SigResume)
	select {
	case <-resumed:
	case <-time.After(time.Second):
		t.Fatal("CheckPause did not resume")
	}
}

func TestContextKillUnblocksSuspended(t *testing.T) {
	ctx := NewContext("urn:t", "h", Spec{}, nil)
	ctx.Deliver(SigSuspend)
	done := make(chan bool)
	go func() { done <- ctx.CheckPause() }()
	time.Sleep(20 * time.Millisecond)
	ctx.Deliver(SigKill)
	select {
	case killed := <-done:
		if !killed {
			t.Fatal("CheckPause should report killed")
		}
	case <-time.After(time.Second):
		t.Fatal("kill did not unblock suspended task")
	}
}

func TestContextUserSignals(t *testing.T) {
	ctx := NewContext("urn:t", "h", Spec{}, nil)
	ctx.Deliver(SigUser + 3)
	select {
	case sig := <-ctx.Signals():
		if sig != SigUser+3 {
			t.Fatalf("signal = %d", sig)
		}
	case <-time.After(time.Second):
		t.Fatal("user signal not delivered")
	}
}

func TestContextCheckpointFlow(t *testing.T) {
	ctx := NewContext("urn:t", "h", Spec{}, nil)
	ctx.RequestCheckpoint()
	select {
	case <-ctx.CheckpointRequested():
	case <-time.After(time.Second):
		t.Fatal("checkpoint request not delivered")
	}
	ctx.SaveCheckpoint([]byte("state"))
	if string(ctx.TakeCheckpoint()) != "state" {
		t.Fatal("checkpoint not stored")
	}
	// RequestCheckpoint coalesces.
	ctx.RequestCheckpoint()
	ctx.RequestCheckpoint()
}

func TestContextRestoredState(t *testing.T) {
	ctx := NewContext("urn:t", "h", Spec{Checkpoint: []byte("resume")}, nil)
	if string(ctx.RestoredState()) != "resume" {
		t.Fatal("restored state missing")
	}
}

func TestStateChangeEncodeDecode(t *testing.T) {
	sc := StateChange{URN: "urn:t", From: StateRunning, To: StateExited, Host: "snipe://hosts/h"}
	got, err := DecodeStateChange(EncodeStateChange(sc))
	if err != nil {
		t.Fatal(err)
	}
	if got != sc {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := DecodeStateChange([]byte{1}); err == nil {
		t.Fatal("truncated payload accepted")
	}
}
