package core

import (
	"fmt"
	"testing"
	"time"

	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/task"
	"snipe/internal/testutil"
)

// TestShardedUniverseEndToEnd brings up a universe whose catalog is
// partitioned across replica groups and checks that daemons, spawning
// and messaging — which all go through the catalog — work unchanged,
// while metadata actually lands shard-side.
func TestShardedUniverseEndToEnd(t *testing.T) {
	u := newUniverse(t, Config{
		RCServers:     2,
		RCShardGroups: 3,
		Hosts:         twoHosts(),
	})
	m := u.ShardMap()
	if m == nil || m.NumShards() != 3 {
		t.Fatalf("shard map %+v, want 3 groups", m)
	}
	if groups := u.RCGroups(); len(groups) != 3 || len(groups[0]) != 2 {
		t.Fatalf("groups shape %d, want 3x2", len(groups))
	}

	// The full boot path already exercised catalog writes (hosts,
	// daemons); verify the host metadata is readable through the routed
	// client and physically placed on its owning group.
	cat := u.Catalog()
	for _, h := range []string{"h1", "h2"} {
		url := naming.HostURL(h)
		v, ok, err := cat.FirstValue(url, rcds.AttrArch)
		if err != nil || !ok || v == "" {
			t.Fatalf("host %s arch = %q %v %v", h, v, ok, err)
		}
		owner := m.Owner(url)
		found := false
		for g, srvs := range u.RCGroups() {
			_, here := srvs[0].Store().FirstValue(url, rcds.AttrArch)
			if here && g != owner {
				t.Fatalf("host %s metadata on group %d, owner is %d", h, g, owner)
			}
			found = found || here
		}
		if !found {
			t.Fatalf("host %s metadata on no group", h)
		}
	}

	// Spawn and message across hosts: end-to-end through sharded
	// resolution.
	c, err := u.NewClient("shard-test")
	if err != nil {
		t.Fatal(err)
	}
	urn, err := c.Spawn(task.Spec{Program: "echo"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(urn, 7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if m, err := c.RecvMatch(urn, 7, 10*time.Second); err != nil || string(m.Payload) != "hello" {
		t.Fatalf("echo through sharded catalog: %v %v", m, err)
	}

	// Writes spread: every group owns some of a modest URI population.
	for i := 0; i < 48; i++ {
		if err := cat.Set(fmt.Sprintf("snipe://files/spread%d", i), "k", "v"); err != nil {
			t.Fatal(err)
		}
	}
	for g, srvs := range u.RCGroups() {
		uris, _, _ := srvs[0].Store().Stats()
		if uris <= 1 { // more than just the shard-map config entry
			t.Fatalf("group %d holds %d URIs; writes not spreading", g, uris)
		}
	}

	// Replication stays intra-group: replica 1 of each group converges
	// to replica 0 without cross-group traffic.
	for g, srvs := range u.RCGroups() {
		srvs := srvs
		testutil.WaitFor(t, 5*time.Second, func() bool {
			return srvs[0].Store().ContentHash() == srvs[1].Store().ContentHash()
		}, fmt.Sprintf("group %d replicas never converged", g))
	}
}
