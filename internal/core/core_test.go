package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"snipe/internal/fileserv"
	"snipe/internal/playground"
	"snipe/internal/seckey"
	"snipe/internal/task"
)

type detRand struct{ state uint64 }

func (r *detRand) Read(p []byte) (int, error) {
	for i := range p {
		r.state = r.state*6364136223846793005 + 1442695040888963407
		p[i] = byte(r.state >> 56)
	}
	return len(p), nil
}

// standardRegistry returns a registry with the programs integration
// tests use.
func standardRegistry() *task.Registry {
	reg := task.NewRegistry()
	reg.Register("idle", func(ctx *task.Context) error {
		<-ctx.Done()
		return task.ErrKilled
	})
	reg.Register("quick", func(ctx *task.Context) error { return nil })
	reg.Register("echo", func(ctx *task.Context) error {
		for {
			m, err := ctx.Recv(time.Second)
			if err != nil {
				select {
				case <-ctx.Done():
					return task.ErrKilled
				default:
					continue
				}
			}
			if err := ctx.Send(m.Src, m.Tag, m.Payload); err != nil {
				return err
			}
		}
	})
	reg.Register("migratable-echo", func(ctx *task.Context) error {
		for {
			select {
			case <-ctx.CheckpointRequested():
				ctx.SaveCheckpoint([]byte{1})
				return task.ErrMigrated
			case <-ctx.Done():
				return task.ErrKilled
			default:
			}
			m, err := ctx.Recv(20 * time.Millisecond)
			if err != nil {
				continue
			}
			if err := ctx.Send(m.Src, m.Tag, m.Payload); err != nil {
				return err
			}
		}
	})
	return reg
}

func newUniverse(t *testing.T, cfg Config) *Universe {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = standardRegistry()
	}
	u, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(u.Close)
	return u
}

func twoHosts() []HostConfig {
	return []HostConfig{
		{Name: "h1", CPUs: 2, MemoryMB: 512},
		{Name: "h2", CPUs: 2, MemoryMB: 512},
	}
}

func TestUniverseInProcessSpawnAndMessage(t *testing.T) {
	u := newUniverse(t, Config{Hosts: twoHosts()})
	c, err := u.NewClient("app")
	if err != nil {
		t.Fatal(err)
	}
	urn, err := c.Spawn(task.Spec{Program: "echo"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(urn, 7, []byte("round trip")); err != nil {
		t.Fatal(err)
	}
	m, err := c.RecvMatch(urn, 7, 10*time.Second)
	if err != nil || string(m.Payload) != "round trip" {
		t.Fatalf("echo: %v %v", m, err)
	}
	if err := c.Signal(urn, task.SigKill); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitState(urn, task.StateExited, 10*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestUniverseWithReplicatedRCServers(t *testing.T) {
	u := newUniverse(t, Config{RCServers: 3, Hosts: twoHosts()})
	c, err := u.NewClient("app")
	if err != nil {
		t.Fatal(err)
	}
	urn, err := c.Spawn(task.Spec{Program: "quick"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitState(urn, task.StateExited, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// The shared catalog client's cache counters surface in every
	// daemon's composed /stats snapshot under the "rcds." prefix.
	for _, d := range u.Daemons() {
		snap := d.MetricsSnapshot()
		for _, key := range []string{"rcds.cache_hits", "rcds.cache_misses", "rcds.failovers"} {
			if _, ok := snap.Counters[key]; !ok {
				t.Fatalf("daemon stats missing %q: %v", key, snap.Counters)
			}
		}
		break
	}
	// Kill one RC replica: the system keeps working (availability
	// through replication, §6).
	u.RCServers()[0].Close()
	urn2, err := c.Spawn(task.Spec{Program: "quick"})
	if err != nil {
		t.Fatalf("spawn after RC failure: %v", err)
	}
	if err := c.WaitState(urn2, task.StateExited, 10*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestUniverseAuthenticatedRC(t *testing.T) {
	u := newUniverse(t, Config{RCServers: 2, Secret: []byte("s3cret"), Hosts: twoHosts()[:1]})
	c, err := u.NewClient("app")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Spawn(task.Spec{Program: "quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestClientMetadataSharing(t *testing.T) {
	u := newUniverse(t, Config{Hosts: twoHosts()[:1]})
	a, _ := u.NewClient("a")
	b, _ := u.NewClient("b")
	if err := a.PutMeta("urn:snipe:app:shared", "phase", "2"); err != nil {
		t.Fatal(err)
	}
	a.AddMeta("urn:snipe:app:shared", "input", "f1")
	a.AddMeta("urn:snipe:app:shared", "input", "f2")
	v, ok, err := b.LookupFirst("urn:snipe:app:shared", "phase")
	if err != nil || !ok || v != "2" {
		t.Fatalf("shared meta: %q %v %v", v, ok, err)
	}
	inputs, err := b.Lookup("urn:snipe:app:shared", "input")
	if err != nil || len(inputs) != 2 {
		t.Fatalf("inputs: %v %v", inputs, err)
	}
}

func TestClientNotifyWatch(t *testing.T) {
	u := newUniverse(t, Config{Hosts: twoHosts()[:1]})
	c, _ := u.NewClient("watcher")
	urn, err := c.Spawn(task.Spec{Program: "idle", NotifyList: []string{c.URN()}})
	if err != nil {
		t.Fatal(err)
	}
	// Running notification.
	sc, err := c.NextNotify(10 * time.Second)
	if err != nil || sc.URN != urn || sc.To != task.StateRunning {
		t.Fatalf("notify 1: %+v %v", sc, err)
	}
	c.Signal(urn, task.SigKill)
	sc, err = c.NextNotify(10 * time.Second)
	if err != nil || sc.To != task.StateExited {
		t.Fatalf("notify 2: %+v %v", sc, err)
	}
}

func TestClientMulticast(t *testing.T) {
	u := newUniverse(t, Config{Hosts: twoHosts(), McastRedundancy: 2})
	group, err := u.CreateGroup("sensors")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := u.NewClient("pub")
	b, _ := u.NewClient("sub1")
	c, _ := u.NewClient("sub2")
	ma, err := a.JoinGroup(group)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := b.JoinGroup(group)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := c.JoinGroup(group)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := ma.Send(1, []byte("reading-42")); err != nil {
		t.Fatal(err)
	}
	for i, m := range []*struct {
		name string
		mem  interface {
			Recv(time.Duration) (string, uint32, []byte, error)
		}
	}{{"b", mb}, {"c", mc}} {
		_, _, data, err := m.mem.Recv(10 * time.Second)
		if err != nil || string(data) != "reading-42" {
			t.Fatalf("member %d (%s): %q %v", i, m.name, data, err)
		}
	}
}

func TestClientFiles(t *testing.T) {
	u := newUniverse(t, Config{
		Hosts:             twoHosts()[:1],
		FileServers:       2,
		ReplicationPolicy: fileserv.ReplicationPolicy{MinReplicas: 2, Interval: 50 * time.Millisecond},
	})
	c, _ := u.NewClient("app")
	data := []byte("dataset contents")
	if _, err := c.StoreFile("", "dataset.bin", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.FetchFile("dataset.bin")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("fetch: %q %v", got, err)
	}
	// The replication daemon copies it to the second server.
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := 0
		for _, fs := range u.FileServers() {
			if _, ok := fs.Get("dataset.bin"); ok {
				n++
			}
		}
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication incomplete: %d copies", n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestClientMigrate(t *testing.T) {
	u := newUniverse(t, Config{Hosts: twoHosts()})
	c, _ := u.NewClient("app")
	urn, err := c.SpawnOn("h1", task.Spec{Program: "migratable-echo"})
	if err != nil {
		t.Fatal(err)
	}
	// Confirm liveness before.
	if err := c.Send(urn, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvMatch(urn, 1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	downtime, err := c.Migrate(urn, "h2")
	if err != nil {
		t.Fatal(err)
	}
	if downtime <= 0 {
		t.Fatal("no downtime measured")
	}
	d2, _ := u.Daemon("h2")
	if st, err := d2.TaskState(urn); err != nil || st != task.StateRunning {
		t.Fatalf("after migrate: %v %v", st, err)
	}
	// Still responsive at the new home.
	if err := c.Send(urn, 2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RecvMatch(urn, 2, 10*time.Second); err != nil {
		t.Fatalf("post-migration echo: %v", err)
	}
}

func TestUniversePlayground(t *testing.T) {
	signer, err := seckey.NewPrincipal("urn:snipe:user:dev", &detRand{state: 3})
	if err != nil {
		t.Fatal(err)
	}
	trust := seckey.NewTrustStore()
	trust.Trust(seckey.PurposeCodeSigning, signer.Name, signer.Public())
	u := newUniverse(t, Config{
		Hosts:       twoHosts()[:1],
		FileServers: 1,
		Trust:       trust,
	})
	c, _ := u.NewClient("publisher")
	img := playground.SignImage(signer, "job.sc",
		playground.MustAssemble(".mem 4\npush 0\nhalt"), 0)
	if err := playground.Publish(u.Catalog(), c.Files(), u.FileServers()[0].URN(), img); err != nil {
		t.Fatal(err)
	}
	urn, err := c.Spawn(task.Spec{Program: playground.ProgramName, CodeURL: "job.sc"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitState(urn, task.StateExited, 15*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestUniverseCloseIdempotentAndClientAfterClose(t *testing.T) {
	u := newUniverse(t, Config{Hosts: twoHosts()[:1]})
	u.Close()
	u.Close()
	if _, err := u.NewClient("late"); err == nil {
		t.Fatal("client created on closed universe")
	}
}

func TestSpawnOnRequirements(t *testing.T) {
	u := newUniverse(t, Config{Hosts: []HostConfig{
		{Name: "big", CPUs: 8, MemoryMB: 4096},
		{Name: "small", CPUs: 1, MemoryMB: 64},
	}})
	c, _ := u.NewClient("app")
	// RM placement respects memory requirements.
	urn, err := c.Spawn(task.Spec{Program: "quick", Req: task.Requirements{MinMemoryMB: 1024}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(urn, ":big:") {
		t.Fatalf("placed on %s", urn)
	}
}
