package core

import (
	"fmt"
	"testing"
	"time"

	"snipe/internal/netsim"
	"snipe/internal/rcds"
	"snipe/internal/rm"
	"snipe/internal/task"
)

// TestChaosWorkloadSurvivesComponentFailures is the failure-injection
// soak: a spawn-and-echo workload runs while RC replicas crash and
// recover, a resource manager dies, and a multicast router disappears.
// The workload must complete with zero failed operations — the paper's
// thesis that replication of data, management and routing removes every
// single point of failure.
func TestChaosWorkloadSurvivesComponentFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	u := newUniverse(t, Config{
		RCServers:        3,
		Hosts:            []HostConfig{{Name: "h1", CPUs: 4}, {Name: "h2", CPUs: 4}, {Name: "h3", CPUs: 4}},
		ResourceManagers: 2,
		McastRedundancy:  2,
	})
	client, err := u.NewClient("chaos")
	if err != nil {
		t.Fatal(err)
	}
	rmClient := rm.NewClient(u.Catalog(), client.Endpoint())
	rmClient.SetTimeout(3 * time.Second)

	rng := netsim.NewRNG(12345)
	stop := make(chan struct{})
	chaosDone := make(chan struct{})

	// The chaos monkey: crash and revive one RC replica at a time, and
	// kill one of the two RMs and one of the three routers mid-run.
	go func() {
		defer close(chaosDone)
		servers := u.RCServers()
		killedRM, killedRouter := false, false
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(time.Duration(50+rng.Intn(100)) * time.Millisecond):
			}
			victim := i % len(servers)
			old := servers[victim]
			addr := old.Addr()
			old.Close()
			select {
			case <-stop:
				return
			case <-time.After(time.Duration(30+rng.Intn(60)) * time.Millisecond):
			}
			// Revive on the same address over the same store.
			revived := rcds.NewServer(old.Store(), rcds.WithAntiEntropyInterval(100*time.Millisecond))
			if err := revived.Start(addr); err == nil {
				var peers []string
				for j, s := range servers {
					if j != victim {
						peers = append(peers, s.Addr())
					}
				}
				revived.SetPeers(peers...)
				servers[victim] = revived
				t.Cleanup(revived.Close)
			}
			if i == 2 && !killedRM {
				u.RMs()[0].Close()
				killedRM = true
			}
			if i == 3 && !killedRouter {
				if r, ok := u.Router("h1"); ok {
					r.Close()
					killedRouter = true
				}
			}
		}
	}()

	// The workload: spawn short echo tasks through the RM service and
	// round-trip a message with each.
	const ops = 30
	failures := 0
	for i := 0; i < ops; i++ {
		urn, err := spawnWithRetry(rmClient, 10*time.Second)
		if err != nil {
			failures++
			t.Logf("op %d spawn: %v", i, err)
			continue
		}
		tag := uint32(1000 + i)
		if err := client.Send(urn, tag, []byte{byte(i)}); err != nil {
			failures++
			continue
		}
		m, err := client.RecvMatch(urn, tag, 15*time.Second)
		if err != nil || m.Payload[0] != byte(i) {
			failures++
			t.Logf("op %d echo: %v", i, err)
			continue
		}
		client.Signal(urn, task.SigKill)
	}
	close(stop)
	<-chaosDone
	if failures != 0 {
		t.Fatalf("%d/%d operations failed under chaos", failures, ops)
	}
}

// spawnWithRetry tolerates transient windows where a request lands on
// a just-killed component; the metadata layer itself never loses state.
func spawnWithRetry(c *rm.Client, budget time.Duration) (string, error) {
	deadline := time.Now().Add(budget)
	var lastErr error
	for time.Now().Before(deadline) {
		urn, err := c.Allocate(task.Spec{Program: "echo"})
		if err == nil {
			return urn, nil
		}
		lastErr = err
		time.Sleep(100 * time.Millisecond)
	}
	return "", fmt.Errorf("spawn retry budget exhausted: %w", lastErr)
}
