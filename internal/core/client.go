package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"snipe/internal/comm"
	"snipe/internal/daemon"
	"snipe/internal/fileserv"
	"snipe/internal/mcast"
	"snipe/internal/migrate"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/rm"
	"snipe/internal/task"
)

var clientReqIDs atomic.Uint64

// Client is the SNIPE client library (paper §3.4): resource location,
// communications, task management, multicast membership, and access to
// external data stores, all through one endpoint with a global URN.
type Client struct {
	u   *Universe
	urn string
	ep  *comm.Endpoint
	rmc *rm.Client
	fsc *fileserv.Client
}

// NewClient creates a client process named name, globally registered
// and ready to communicate.
func (u *Universe) NewClient(name string) (*Client, error) {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil, ErrClosed
	}
	u.mu.Unlock()
	c := &Client{u: u, urn: naming.ProcessURN("client", name)}
	resolver := naming.NewResolver(u.catalog)
	c.ep = comm.NewEndpoint(c.urn, comm.WithResolver(resolver))
	route, err := c.ep.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		c.ep.Close()
		return nil, fmt.Errorf("core: client %s: %w", name, err)
	}
	if err := naming.Register(u.catalog, c.urn, []comm.Route{route}); err != nil {
		c.ep.Close()
		return nil, err
	}
	c.rmc = rm.NewClient(u.catalog, c.ep)
	c.fsc = fileserv.NewClient(u.catalog, c.ep)
	u.mu.Lock()
	u.clients = append(u.clients, c)
	u.mu.Unlock()
	return c, nil
}

// URN returns the client's global name.
func (c *Client) URN() string { return c.urn }

// Endpoint exposes the underlying comm endpoint.
func (c *Client) Endpoint() *comm.Endpoint { return c.ep }

// Close withdraws the client's registration and endpoint.
func (c *Client) Close() {
	naming.Unregister(c.u.catalog, c.urn)
	c.ep.Close()
}

// --- communications --------------------------------------------------

// Send queues a reliable message to any SNIPE process by URN.
func (c *Client) Send(dst string, tag uint32, payload []byte) error {
	return c.ep.Send(dst, tag, payload)
}

// SendWait sends and waits for the end-to-end acknowledgement.
func (c *Client) SendWait(dst string, tag uint32, payload []byte, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return c.ep.SendWait(ctx, dst, tag, payload)
}

// Recv returns the next message.
func (c *Client) Recv(timeout time.Duration) (*comm.Message, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return c.ep.Recv(ctx)
}

// RecvMatch receives selectively by source and tag.
func (c *Client) RecvMatch(src string, tag uint32, timeout time.Duration) (*comm.Message, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return c.ep.RecvMatch(ctx, src, tag)
}

// --- resource location ------------------------------------------------

// Lookup returns the live values of an attribute of any URI — the
// client library's "resource location" facility.
func (c *Client) Lookup(uri, attr string) ([]string, error) {
	return c.u.catalog.Values(uri, attr)
}

// LookupFirst returns the most recent value of an attribute.
func (c *Client) LookupFirst(uri, attr string) (string, bool, error) {
	return c.u.catalog.FirstValue(uri, attr)
}

// PutMeta publishes shared application metadata — the paper notes RC
// servers let applications "share data without the creation of many
// temporary small files" (§3.1).
func (c *Client) PutMeta(uri, attr, value string) error {
	return c.u.catalog.Set(uri, attr, value)
}

// AddMeta adds one value of a multi-valued attribute.
func (c *Client) AddMeta(uri, attr, value string) error {
	return c.u.catalog.Add(uri, attr, value)
}

// --- task management ---------------------------------------------------

// Spawn places and starts a task via the resource-manager service,
// returning its URN.
func (c *Client) Spawn(spec task.Spec) (string, error) {
	return c.rmc.Allocate(spec)
}

// SpawnOn starts a task on a specific host, directly via its daemon.
func (c *Client) SpawnOn(host string, spec task.Spec) (string, error) {
	durn, ok, err := c.u.catalog.FirstValue(naming.HostURL(host), rcds.AttrHostDaemonURL)
	if err != nil || !ok {
		return "", fmt.Errorf("core: host %s has no daemon: %w", host, err)
	}
	return daemon.SpawnRemote(c.ep, durn, spec, clientReqIDs.Add(1), 10*time.Second)
}

// Signal delivers a signal to a task via its host daemon.
func (c *Client) Signal(taskURN string, sig task.Signal) error {
	durn, err := c.daemonOf(taskURN)
	if err != nil {
		return err
	}
	return daemon.SignalRemote(c.ep, durn, taskURN, sig)
}

// TaskState reads a task's recorded state from RC metadata.
func (c *Client) TaskState(taskURN string) (task.State, error) {
	v, ok, err := c.u.catalog.FirstValue(taskURN, rcds.AttrState)
	if err != nil {
		return "", err
	}
	if !ok {
		return "", fmt.Errorf("core: %s has no state metadata", taskURN)
	}
	return task.State(v), nil
}

// WaitState polls until the task reaches the wanted state.
func (c *Client) WaitState(taskURN string, want task.State, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.TaskState(taskURN)
		if err == nil && st == want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: %s state %v, want %v: %w", taskURN, st, want, comm.ErrTimeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Watch subscribes this client to a task's notify list; state changes
// arrive as task.TagNotify messages.
func (c *Client) Watch(taskURN string) error {
	return c.u.catalog.Add(taskURN, rcds.AttrNotify, c.urn)
}

// NextNotify returns the next state-change notification.
func (c *Client) NextNotify(timeout time.Duration) (task.StateChange, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	m, err := c.ep.RecvMatch(ctx, "", task.TagNotify)
	if err != nil {
		return task.StateChange{}, err
	}
	return task.DecodeStateChange(m.Payload)
}

// Migrate moves a running task to another host, via the daemons'
// message protocols.
func (c *Client) Migrate(taskURN, dstHost string) (time.Duration, error) {
	srcDaemon, err := c.daemonOf(taskURN)
	if err != nil {
		return 0, err
	}
	dstDaemon, ok, err := c.u.catalog.FirstValue(naming.HostURL(dstHost), rcds.AttrHostDaemonURL)
	if err != nil || !ok {
		return 0, fmt.Errorf("core: host %s has no daemon: %w", dstHost, err)
	}
	return migrate.Remote(c.u.catalog, c.ep, taskURN, srcDaemon, dstDaemon, migrate.Options{})
}

func (c *Client) daemonOf(taskURN string) (string, error) {
	host, ok, err := c.u.catalog.FirstValue(taskURN, "host")
	if err != nil || !ok {
		return "", fmt.Errorf("core: %s has no host metadata: %w", taskURN, err)
	}
	durn, ok, err := c.u.catalog.FirstValue(host, rcds.AttrHostDaemonURL)
	if err != nil || !ok {
		return "", fmt.Errorf("core: host %s has no daemon: %w", host, err)
	}
	return durn, nil
}

// --- multicast ----------------------------------------------------------

// JoinGroup registers this client in a multicast group.
func (c *Client) JoinGroup(groupURN string) (*mcast.Member, error) {
	return mcast.Join(c.u.catalog, c.ep, groupURN)
}

// --- files ----------------------------------------------------------------

// StoreFile writes data to a file server (the first registered one if
// serverURN is empty) and returns the chosen server URN.
func (c *Client) StoreFile(serverURN, name string, data []byte) (string, error) {
	if serverURN == "" {
		servers, err := c.fsc.Servers()
		if err != nil {
			return "", err
		}
		if len(servers) == 0 {
			return "", fmt.Errorf("core: no file servers registered")
		}
		serverURN = servers[0]
	}
	return serverURN, c.fsc.Store(serverURN, name, data)
}

// FetchFile retrieves a file from any replica.
func (c *Client) FetchFile(name string) ([]byte, error) {
	return c.fsc.FetchAny(name, nil)
}

// Files exposes the full file client for advanced use (sinks, sources,
// replication control).
func (c *Client) Files() *fileserv.Client { return c.fsc }
