// Package core assembles the SNIPE system (paper §3): replicated
// RC/metadata servers, per-host daemons, redundant resource managers,
// file servers, multicast routers, playgrounds and consoles, plus the
// client library through which applications use them.
//
// A Universe is an in-process SNIPE deployment: every component is
// real (real sockets, real replication, real daemons) but runs inside
// one OS process on virtual hosts — the DESIGN.md substitution for the
// paper's campus testbed. The cmd/ binaries run the same components
// standalone across OS processes.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"snipe/internal/comm"
	"snipe/internal/daemon"
	"snipe/internal/fileserv"
	"snipe/internal/mcast"
	"snipe/internal/naming"
	"snipe/internal/playground"
	"snipe/internal/rcds"
	"snipe/internal/rm"
	"snipe/internal/seckey"
	"snipe/internal/task"
)

// HostConfig describes one virtual host.
type HostConfig struct {
	Name     string
	Arch     string
	CPUs     int
	MemoryMB int
	Listens  []daemon.ListenSpec
}

// Config describes a universe.
type Config struct {
	// RCServers is the number of replicated RC/metadata servers per
	// replica group. 0 means in-process catalog (no TCP RC servers):
	// fastest, used by unit tests; >= 1 starts real master–master
	// replicas.
	RCServers int
	// RCShardGroups partitions the catalog URI namespace across this
	// many replica groups of RCServers replicas each, under a
	// consistent-hash shard map published in the catalog's config
	// namespace (DESIGN.md "Sharded catalog"). 0 or 1 keeps the single
	// fully replicated group. Requires RCServers >= 1.
	RCShardGroups int
	// Secret enables HMAC authentication on the RC protocol.
	Secret []byte
	// Hosts to bring up, each with a SNIPE daemon.
	Hosts []HostConfig
	// ResourceManagers is the number of redundant RMs (default 1 if
	// any hosts are configured).
	ResourceManagers int
	// FileServers is the number of file servers.
	FileServers int
	// McastRedundancy is the target number of multicast routers per
	// group; one router is created per host and self-elects per group
	// up to this redundancy. 0 disables router creation.
	McastRedundancy int
	// Registry holds the programs tasks can run; a fresh registry is
	// created if nil. The playground program is installed automatically
	// when Trust is set.
	Registry *task.Registry
	// Trust, if non-nil, enables playgrounds with this trust store.
	Trust *seckey.TrustStore
	// PlaygroundQuota overrides the default sandbox quota.
	PlaygroundQuota playground.Quota
	// ReplicationPolicy configures the file replication daemon; zero
	// value disables it.
	ReplicationPolicy fileserv.ReplicationPolicy
}

// Universe is a running SNIPE deployment.
type Universe struct {
	cfg      Config
	store    *rcds.Store // in-process mode
	servers  []*rcds.Server
	groups   [][]*rcds.Server // servers by shard group (one group unsharded)
	shardMap *rcds.ShardMap   // nil when unsharded
	catalog  naming.Catalog
	registry *task.Registry

	daemons     map[string]*daemon.Daemon
	rms         []*rm.Manager
	fileServers []*fileserv.Server
	routers     map[string]*mcast.Router
	pg          *playground.Playground
	replicator  *fileserv.Replicator
	repEP       *comm.Endpoint

	mu      sync.Mutex
	clients []*Client
	closed  bool
}

// ErrClosed indicates operations on a closed universe.
var ErrClosed = errors.New("core: universe closed")

// New bootstraps a universe.
func New(cfg Config) (*Universe, error) {
	u := &Universe{
		cfg:      cfg,
		registry: cfg.Registry,
		daemons:  make(map[string]*daemon.Daemon),
		routers:  make(map[string]*mcast.Router),
	}
	if u.registry == nil {
		u.registry = task.NewRegistry()
	}

	// Metadata layer.
	if cfg.RCServers <= 0 {
		u.store = rcds.NewStore("rc-local")
		u.catalog = naming.StoreCatalog(u.store)
	} else {
		nGroups := cfg.RCShardGroups
		if nGroups < 1 {
			nGroups = 1
		}
		u.groups = make([][]*rcds.Server, nGroups)
		for g := 0; g < nGroups; g++ {
			for i := 0; i < cfg.RCServers; i++ {
				s := rcds.NewServer(rcds.NewStore(fmt.Sprintf("rc%d-%d", g, i)),
					rcds.WithSecret(cfg.Secret),
					rcds.WithAntiEntropyInterval(100*time.Millisecond))
				if err := s.Start("127.0.0.1:0"); err != nil {
					u.Close()
					return nil, err
				}
				u.groups[g] = append(u.groups[g], s)
				u.servers = append(u.servers, s)
			}
			// Replication is per group: peers mesh within the group only,
			// so write fan-out stays constant as groups are added.
			for i, s := range u.groups[g] {
				var peers []string
				for j, p := range u.groups[g] {
					if i != j {
						peers = append(peers, p.Addr())
					}
				}
				s.SetPeers(peers...)
			}
		}
		if nGroups > 1 {
			m := &rcds.ShardMap{Epoch: 1}
			for _, srvs := range u.groups {
				addrs := make([]string, len(srvs))
				for i, s := range srvs {
					addrs[i] = s.Addr()
				}
				m.Groups = append(m.Groups, addrs)
			}
			// Enforce ownership and seed the map into every replica's
			// config namespace directly, so the very first client
			// resolution succeeds against any replica (the concurrent
			// same-value writes converge under LWW).
			for g, srvs := range u.groups {
				for _, s := range srvs {
					s.SetShard(g, m)
					s.Store().Set(rcds.ShardMapURI, rcds.AttrShardMap, m.Format())
				}
			}
			u.shardMap = m
		}
		// The universe's shared catalog client caches reads, invalidated
		// by the RC servers' Wait sequence numbers: every resolver in
		// the universe rides one coherent cache instead of polling. Under
		// sharding it routes each URI to its owning group, with a cache
		// and watch per group.
		opts := []rcds.ClientOption{rcds.WithReadCache()}
		if u.shardMap != nil {
			opts = append(opts, rcds.WithShardRouting())
		}
		seed := make([]string, len(u.groups[0]))
		for i, s := range u.groups[0] {
			seed[i] = s.Addr()
		}
		client := rcds.NewClient(seed, cfg.Secret, opts...)
		u.catalog = naming.ClientCatalog(client)
	}

	// Playground.
	if cfg.Trust != nil {
		u.pg = playground.New(u.catalog, cfg.Trust, nil, cfg.PlaygroundQuota)
		u.pg.Register(u.registry)
	}

	// Hosts and daemons.
	for _, hc := range cfg.Hosts {
		if hc.Arch == "" {
			hc.Arch = "go-sim"
		}
		d := daemon.New(daemon.Config{
			HostName: hc.Name,
			Arch:     hc.Arch,
			CPUs:     hc.CPUs,
			MemoryMB: hc.MemoryMB,
			Catalog:  u.catalog,
			Registry: u.registry,
			Listens:  hc.Listens,
		})
		if err := d.Start(); err != nil {
			u.Close()
			return nil, err
		}
		u.daemons[hc.Name] = d

		if cfg.McastRedundancy > 0 {
			r, err := mcast.NewRouter(hc.Name, u.catalog, nil)
			if err != nil {
				u.Close()
				return nil, err
			}
			u.routers[hc.Name] = r
		}
	}

	// Resource managers.
	nRM := cfg.ResourceManagers
	if nRM == 0 && len(cfg.Hosts) > 0 {
		nRM = 1
	}
	for i := 0; i < nRM; i++ {
		m, err := rm.NewManager(fmt.Sprintf("rm%d", i), u.catalog, nil)
		if err != nil {
			u.Close()
			return nil, err
		}
		u.rms = append(u.rms, m)
	}

	// File servers.
	for i := 0; i < cfg.FileServers; i++ {
		fs, err := fileserv.NewServer(fmt.Sprintf("fs%d", i), u.catalog, nil)
		if err != nil {
			u.Close()
			return nil, err
		}
		u.fileServers = append(u.fileServers, fs)
	}
	if cfg.ReplicationPolicy.MinReplicas > 0 && cfg.FileServers >= 2 {
		u.repEP = comm.NewEndpoint(naming.ProcessURN("core", "replicator"),
			comm.WithResolver(naming.NewResolver(u.catalog)))
		route, err := u.repEP.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
		if err != nil {
			u.Close()
			return nil, err
		}
		naming.Register(u.catalog, u.repEP.URN(), []comm.Route{route})
		u.replicator = fileserv.NewReplicator(
			fileserv.NewClient(u.catalog, u.repEP), cfg.ReplicationPolicy)
		u.replicator.Start()
	}
	return u, nil
}

// Catalog exposes the metadata layer.
func (u *Universe) Catalog() naming.Catalog { return u.catalog }

// Registry exposes the shared program registry.
func (u *Universe) Registry() *task.Registry { return u.registry }

// Daemon returns a host's daemon.
func (u *Universe) Daemon(host string) (*daemon.Daemon, bool) {
	d, ok := u.daemons[host]
	return d, ok
}

// Daemons returns all host daemons keyed by host name.
func (u *Universe) Daemons() map[string]*daemon.Daemon { return u.daemons }

// RMs returns the resource managers.
func (u *Universe) RMs() []*rm.Manager { return u.rms }

// FileServers returns the file servers.
func (u *Universe) FileServers() []*fileserv.Server { return u.fileServers }

// Router returns a host's multicast router.
func (u *Universe) Router(host string) (*mcast.Router, bool) {
	r, ok := u.routers[host]
	return r, ok
}

// Playground returns the universe's playground, if configured.
func (u *Universe) Playground() *playground.Playground { return u.pg }

// RCServers returns the RC server replicas (nil in in-process mode),
// group-major when sharded.
func (u *Universe) RCServers() []*rcds.Server { return u.servers }

// RCGroups returns the RC server replicas by shard group: one inner
// slice per group, a single group when the catalog is unsharded.
func (u *Universe) RCGroups() [][]*rcds.Server { return u.groups }

// ShardMap returns the published catalog shard map, nil when the
// catalog is unsharded.
func (u *Universe) ShardMap() *rcds.ShardMap { return u.shardMap }

// RCServerAddrs returns the replica addresses.
func (u *Universe) RCServerAddrs() []string {
	addrs := make([]string, len(u.servers))
	for i, s := range u.servers {
		addrs[i] = s.Addr()
	}
	return addrs
}

// CreateGroup establishes a multicast group with router self-election
// across the universe's hosts, up to the configured redundancy.
func (u *Universe) CreateGroup(name string) (string, error) {
	group := naming.GroupURN(name)
	if u.cfg.McastRedundancy <= 0 {
		return group, fmt.Errorf("core: universe has no multicast routers")
	}
	elected := 0
	for _, r := range u.routers {
		ok, err := r.MaybeServe(group, u.cfg.McastRedundancy)
		if err != nil {
			return group, err
		}
		if ok {
			elected++
		}
	}
	if elected == 0 {
		return group, fmt.Errorf("core: no router elected for %s", group)
	}
	return group, nil
}

// Close shuts the universe down: clients, daemons, services, then the
// metadata layer.
func (u *Universe) Close() {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return
	}
	u.closed = true
	clients := u.clients
	u.mu.Unlock()
	for _, c := range clients {
		c.Close()
	}
	if u.replicator != nil {
		u.replicator.Stop()
	}
	if u.repEP != nil {
		u.repEP.Close()
	}
	for _, d := range u.daemons {
		d.Close()
	}
	for _, r := range u.routers {
		r.Close()
	}
	for _, m := range u.rms {
		m.Close()
	}
	for _, fs := range u.fileServers {
		fs.Close()
	}
	if cc, ok := u.catalog.(interface{ Client() *rcds.Client }); ok {
		cc.Client().Close()
	}
	for _, s := range u.servers {
		s.Close()
	}
}
