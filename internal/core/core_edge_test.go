package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"snipe/internal/mcast"
	"snipe/internal/rcds"
	"snipe/internal/task"
)

func TestCreateGroupWithoutRouters(t *testing.T) {
	u := newUniverse(t, Config{Hosts: twoHosts()[:1]}) // McastRedundancy 0
	if _, err := u.CreateGroup("g"); err == nil {
		t.Fatal("group created without routers")
	}
}

func TestSpawnOnUnknownHost(t *testing.T) {
	u := newUniverse(t, Config{Hosts: twoHosts()[:1]})
	c, _ := u.NewClient("app")
	if _, err := c.SpawnOn("no-such-host", task.Spec{Program: "quick"}); err == nil {
		t.Fatal("spawn on unknown host accepted")
	}
}

func TestMigrateUnknownTask(t *testing.T) {
	u := newUniverse(t, Config{Hosts: twoHosts()})
	c, _ := u.NewClient("app")
	if _, err := c.Migrate("urn:snipe:process:none", "h2"); err == nil {
		t.Fatal("migrate of unknown task accepted")
	}
	urn, err := c.SpawnOn("h1", task.Spec{Program: "idle"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Migrate(urn, "no-such-host"); err == nil {
		t.Fatal("migrate to unknown host accepted")
	}
	c.Signal(urn, task.SigKill)
}

func TestTaskStateUnknownURN(t *testing.T) {
	u := newUniverse(t, Config{Hosts: twoHosts()[:1]})
	c, _ := u.NewClient("app")
	if _, err := c.TaskState("urn:none"); err == nil {
		t.Fatal("state of unknown task resolved")
	}
	if err := c.WaitState("urn:none", task.StateExited, 100*time.Millisecond); err == nil {
		t.Fatal("WaitState of unknown task succeeded")
	}
}

func TestStoreFileWithoutServers(t *testing.T) {
	u := newUniverse(t, Config{Hosts: twoHosts()[:1]}) // no file servers
	c, _ := u.NewClient("app")
	if _, err := c.StoreFile("", "f", []byte("x")); err == nil {
		t.Fatal("store without servers accepted")
	}
}

func TestServerTimestampingVisibleToClients(t *testing.T) {
	// §3.1: "automatic time stamping of metadata by the RC servers also
	// helps temporally dis-joint tasks" — assertions carry the server's
	// wall-clock stamp end to end.
	u := newUniverse(t, Config{RCServers: 1, Hosts: twoHosts()[:1]})
	before := time.Now().UnixNano()
	u.Catalog().Set("urn:ts", "k", "v")
	client := rcds.NewClient(u.RCServerAddrs(), nil)
	defer client.Close()
	as, err := client.Get(context.Background(), "urn:ts")
	if err != nil || len(as) != 1 {
		t.Fatalf("Get: %v %v", as, err)
	}
	if as[0].ServerTime < before || as[0].ServerTime > time.Now().UnixNano() {
		t.Fatalf("server timestamp implausible: %d", as[0].ServerTime)
	}
}

func TestReplicatedProcessViaGroup(t *testing.T) {
	// §5.7: "if several computational processes are run concurrently,
	// provided with the same input ... a multicast group can be created
	// to provide input to all of those processes" — N replicas each see
	// the single input exactly once.
	reg := standardRegistry()
	results := make(chan int64, 8)
	reg.Register("replica", func(ctx *task.Context) error {
		member, err := mcast.Join(ctx.Catalog(), ctx.Endpoint(), ctx.Args()[0])
		if err != nil {
			return err
		}
		_, _, data, err := member.Recv(20 * time.Second)
		if err != nil {
			return err
		}
		var v int64
		for _, b := range data {
			v = v<<8 | int64(b)
		}
		results <- v * 2 // each replica computes the same function
		return nil
	})
	u := newUniverse(t, Config{Hosts: twoHosts(), McastRedundancy: 2, Registry: reg})
	group, err := u.CreateGroup("pseudo-process")
	if err != nil {
		t.Fatal(err)
	}
	const replicas = 3
	for i := 0; i < replicas; i++ {
		if _, err := u.Daemons()["h1"].Spawn(task.Spec{Program: "replica", Args: []string{group}}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond) // joins settle

	feeder, _ := u.NewClient("feeder")
	fm, err := feeder.JoinGroup(group)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := fm.Send(1, []byte{21}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < replicas; i++ {
		select {
		case v := <-results:
			if v != 42 {
				t.Fatalf("replica %d computed %d", i, v)
			}
		case <-time.After(20 * time.Second):
			t.Fatalf("replica %d never produced output", i)
		}
	}
}

func TestUniverseHelpers(t *testing.T) {
	u := newUniverse(t, Config{RCServers: 2, Hosts: twoHosts(), McastRedundancy: 1, FileServers: 1})
	if len(u.RCServerAddrs()) != 2 {
		t.Fatal("RCServerAddrs")
	}
	if _, ok := u.Daemon("h1"); !ok {
		t.Fatal("Daemon(h1)")
	}
	if _, ok := u.Daemon("nope"); ok {
		t.Fatal("Daemon(nope)")
	}
	if _, ok := u.Router("h1"); !ok {
		t.Fatal("Router(h1)")
	}
	if len(u.RMs()) != 1 || len(u.FileServers()) != 1 {
		t.Fatal("RMs/FileServers")
	}
	if u.Playground() != nil {
		t.Fatal("unexpected playground")
	}
	if u.Registry() == nil || u.Catalog() == nil {
		t.Fatal("registry/catalog")
	}
	// Client URNs are namespaced.
	c, _ := u.NewClient("named")
	if !strings.Contains(c.URN(), "client:named") {
		t.Fatalf("client URN: %s", c.URN())
	}
	if c.Endpoint() == nil {
		t.Fatal("endpoint")
	}
}
