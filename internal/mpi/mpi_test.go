package mpi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"snipe/internal/naming"
	"snipe/internal/pvm"
	"snipe/internal/rcds"
)

func TestSendRecvOrdering(t *testing.T) {
	w := NewWorld("w", 2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < 20; i++ {
				if err := c.Send(1, 5, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < 20; i++ {
			src, data, err := c.Recv(0, 5, 5*time.Second)
			if err != nil {
				return err
			}
			if src != 0 || data[0] != byte(i) {
				return fmt.Errorf("order at %d: src=%d got=%d", i, src, data[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvWildcardsAndTimeout(t *testing.T) {
	w := NewWorld("w", 3)
	c2 := w.Rank(2)
	if _, _, err := c2.Recv(AnySource, AnyTag, 30*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	w.Rank(0).Send(2, 1, []byte("a"))
	w.Rank(1).Send(2, 2, []byte("b"))
	// Tag-selective receive out of arrival order.
	src, data, err := c2.Recv(AnySource, 2, time.Second)
	if err != nil || src != 1 || string(data) != "b" {
		t.Fatalf("tag 2: %d %q %v", src, data, err)
	}
	// Source-selective.
	src, data, err = c2.Recv(0, AnyTag, time.Second)
	if err != nil || src != 0 || string(data) != "a" {
		t.Fatalf("src 0: %d %q %v", src, data, err)
	}
	if err := c2.Send(99, 0, nil); !errors.Is(err, ErrRank) {
		t.Fatalf("bad rank: %v", err)
	}
}

func TestBarrier(t *testing.T) {
	w := NewWorld("w", 5)
	var before, after [5]bool
	err := w.Run(func(c *Comm) error {
		before[c.Rank()] = true
		if err := c.Barrier(); err != nil {
			return err
		}
		// Everyone must have arrived before anyone proceeds.
		for i := 0; i < 5; i++ {
			if !before[i] {
				return fmt.Errorf("rank %d passed barrier before rank %d arrived", c.Rank(), i)
			}
		}
		after[c.Rank()] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range after {
		if !after[i] {
			t.Fatalf("rank %d never finished", i)
		}
	}
}

func TestBcast(t *testing.T) {
	w := NewWorld("w", 4)
	err := w.Run(func(c *Comm) error {
		var data []byte
		if c.Rank() == 2 {
			data = []byte("the broadcast")
		}
		got, err := c.Bcast(2, data)
		if err != nil {
			return err
		}
		if string(got) != "the broadcast" {
			return fmt.Errorf("rank %d got %q", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	w := NewWorld("w", 4)
	err := w.Run(func(c *Comm) error {
		out, err := c.Gather(0, []byte{byte(c.Rank() * 10)})
		if err != nil {
			return err
		}
		if c.Rank() != 0 {
			if out != nil {
				return fmt.Errorf("non-root got %v", out)
			}
			return nil
		}
		for i, b := range out {
			if len(b) != 1 || b[0] != byte(i*10) {
				return fmt.Errorf("gather slot %d: %v", i, b)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceAndAllReduce(t *testing.T) {
	w := NewWorld("w", 4)
	err := w.Run(func(c *Comm) error {
		sum, err := c.ReduceSum(0, int64(c.Rank()+1))
		if err != nil {
			return err
		}
		if c.Rank() == 0 && sum != 10 {
			return fmt.Errorf("reduce = %d", sum)
		}
		all, err := c.AllReduceSum(int64(c.Rank() + 1))
		if err != nil {
			return err
		}
		if all != 10 {
			return fmt.Errorf("allreduce at rank %d = %d", c.Rank(), all)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAbortUnblocksRanks(t *testing.T) {
	w := NewWorld("w", 2)
	done := make(chan error, 1)
	go func() {
		_, _, err := w.Rank(0).Recv(AnySource, AnyTag, 0)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	w.Abort()
	select {
	case err := <-done:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("want ErrAborted, got %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("abort did not unblock")
	}
}

func TestInterSendWithoutBridge(t *testing.T) {
	w := NewWorld("w", 1)
	if err := w.Rank(0).InterSend("x", 0, 0, nil); !errors.Is(err, ErrNoBridge) {
		t.Fatalf("want ErrNoBridge, got %v", err)
	}
}

// bridgePingPong exercises an inter-world exchange over any bridge.
func bridgePingPong(t *testing.T, wa, wb *World) {
	t.Helper()
	payload := []byte("across the bridge")
	errA := make(chan error, 1)
	go func() {
		errA <- wa.Run(func(c *Comm) error {
			if c.Rank() != 0 {
				return nil
			}
			if err := c.InterSend(wb.Name(), 0, 3, payload); err != nil {
				return err
			}
			srcWorld, srcRank, data, err := c.InterRecv(4, 10*time.Second)
			if err != nil {
				return err
			}
			if srcWorld != wb.Name() || srcRank != 0 || !bytes.Equal(data, payload) {
				return fmt.Errorf("reply: %s %d %q", srcWorld, srcRank, data)
			}
			return nil
		})
	}()
	err := wb.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		srcWorld, srcRank, data, err := c.InterRecv(3, 10*time.Second)
		if err != nil {
			return err
		}
		if srcWorld != wa.Name() || srcRank != 0 {
			return fmt.Errorf("from: %s %d", srcWorld, srcRank)
		}
		return c.InterSend(wa.Name(), 0, 4, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errA; err != nil {
		t.Fatal(err)
	}
}

func TestMPIConnectBridge(t *testing.T) {
	cat := naming.StoreCatalog(rcds.NewStore("mpic-test"))
	bridge := NewMPIConnectBridge(cat)
	defer bridge.Close()
	wa := NewWorld("cray", 2)
	wb := NewWorld("paragon", 2)
	if err := wa.ConnectBridge(bridge); err != nil {
		t.Fatal(err)
	}
	if err := wb.ConnectBridge(bridge); err != nil {
		t.Fatal(err)
	}
	bridgePingPong(t, wa, wb)
}

func TestPVMPIBridge(t *testing.T) {
	reg := RelayRegistry()
	master, err := pvm.NewMaster("mpp-a", "127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Kill()
	slave, err := pvm.Join("mpp-b", "127.0.0.1:0", master.Addr(), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer slave.Kill()

	ba := NewPVMPIBridge(master)
	bb := NewPVMPIBridge(slave)
	wa := NewWorld("cray", 2)
	wb := NewWorld("paragon", 2)
	if err := wa.ConnectBridge(ba); err != nil {
		t.Fatal(err)
	}
	if err := wb.ConnectBridge(bb); err != nil {
		t.Fatal(err)
	}
	ShareDirectory(ba, bb)
	ShareDirectory(bb, ba)
	bridgePingPong(t, wa, wb)
}

func TestPVMPIBridgeDiesWithMaster(t *testing.T) {
	reg := RelayRegistry()
	master, err := pvm.NewMaster("solo", "127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer master.Kill()
	bridge := NewPVMPIBridge(master)
	w := NewWorld("w", 1)
	if err := w.ConnectBridge(bridge); err != nil {
		t.Fatal(err)
	}
	master.Kill()
	// Registration of a new world fails: the pvmd is gone — "the need
	// to provide access to a PVM daemon pvmd at all times".
	w2 := NewWorld("late", 1)
	if err := w2.ConnectBridge(NewPVMPIBridge(master)); err == nil {
		t.Fatal("registration succeeded on a dead pvmd")
	}
}

func BenchmarkIntraWorldPingPong(b *testing.B) {
	w := NewWorld("bench", 2)
	c0, c1 := w.Rank(0), w.Rank(1)
	//lint:allow goroutinelife echo responder exits when Recv times out after the benchmark finishes
	go func() {
		for {
			_, data, err := c1.Recv(0, 1, time.Minute)
			if err != nil {
				return
			}
			c1.Send(0, 2, data)
		}
	}()
	payload := make([]byte, 1024)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c0.Send(1, 1, payload)
		if _, _, err := c0.Recv(1, 2, time.Minute); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	w.Abort()
}
