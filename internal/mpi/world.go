// Package mpi implements the message-passing substrate of the paper's
// §6.1 application study: a small MPI-1 subset for computation inside
// one MPP, plus the two inter-MPP bridges the paper compares —
// PVMPI (vendor MPIs glued by PVM daemons) and MPI Connect (the same
// glue re-based on SNIPE name resolution and direct connections).
//
// The intra-MPP library models "the vendor's optimized MPI": ranks are
// goroutines in one address space exchanging messages through in-memory
// mailboxes, deliberately much faster than any inter-MPP path, exactly
// as a vendor MPI on an MPP interconnect was faster than the campus
// network. The interesting measurements are the bridges (bridge.go,
// pvmpi.go, mpiconnect.go).
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Wildcards for Recv matching.
const (
	AnySource = -1
	AnyTag    = -1
)

// Errors of the MPI layer.
var (
	// ErrRank indicates an out-of-range rank.
	ErrRank = errors.New("mpi: rank out of range")
	// ErrTimeout indicates a receive timeout.
	ErrTimeout = errors.New("mpi: timeout")
	// ErrAborted indicates the world was aborted.
	ErrAborted = errors.New("mpi: world aborted")
)

// message is one intra-world message.
type message struct {
	src, tag int
	data     []byte
}

// interMessage is one message received across an inter-communicator.
type interMessage struct {
	srcWorld string
	srcRank  int
	tag      int
	data     []byte
}

// World is one MPP's COMM_WORLD.
type World struct {
	name  string
	size  int
	comms []*Comm

	mu      sync.Mutex
	aborted bool

	bridge     Bridge
	bridgeOnce sync.Once
}

// NewWorld creates a world of the given size. name identifies the
// world across bridges (the paper's per-MPP application sub-sections).
func NewWorld(name string, size int) *World {
	w := &World{name: name, size: size}
	w.comms = make([]*Comm, size)
	for i := range w.comms {
		c := &Comm{world: w, rank: i}
		c.cond = sync.NewCond(&c.mu)
		w.comms[i] = c
	}
	return w
}

// Name returns the world's bridge-visible name.
func (w *World) Name() string { return w.name }

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Rank returns rank i's communicator.
func (w *World) Rank(i int) *Comm { return w.comms[i] }

// Abort wakes every blocked rank with ErrAborted.
func (w *World) Abort() {
	w.mu.Lock()
	w.aborted = true
	w.mu.Unlock()
	for _, c := range w.comms {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

func (w *World) isAborted() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.aborted
}

// Run executes body on every rank concurrently and returns the first
// error (aborting the world on failure).
func (w *World) Run(body func(c *Comm) error) error {
	errs := make(chan error, w.size)
	for i := 0; i < w.size; i++ {
		go func(c *Comm) {
			if err := body(c); err != nil {
				w.Abort()
				errs <- fmt.Errorf("rank %d: %w", c.rank, err)
				return
			}
			errs <- nil
		}(w.comms[i])
	}
	var first error
	for i := 0; i < w.size; i++ {
		if err := <-errs; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Comm is one rank's communicator.
type Comm struct {
	world *World
	rank  int

	mu       sync.Mutex
	cond     *sync.Cond
	mailbox  []message
	interBox []interMessage
	collSeq  [8]int // per-collective call counters, for tag separation
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// WorldName returns the world's bridge-visible name.
func (c *Comm) WorldName() string { return c.world.name }

// Send delivers data to dst within the world. Sends are buffered and
// never block (MPI_Bsend semantics, sufficient for the experiments).
func (c *Comm) Send(dst, tag int, data []byte) error {
	if dst < 0 || dst >= c.world.size {
		return fmt.Errorf("%w: %d", ErrRank, dst)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	d := c.world.comms[dst]
	d.mu.Lock()
	d.mailbox = append(d.mailbox, message{src: c.rank, tag: tag, data: cp})
	d.cond.Broadcast()
	d.mu.Unlock()
	return nil
}

// Recv returns the next message matching (src, tag); AnySource/AnyTag
// wildcard. timeout <= 0 means block until aborted.
func (c *Comm) Recv(src, tag int, timeout time.Duration) (gotSrc int, data []byte, err error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		for i, m := range c.mailbox {
			if (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag) {
				c.mailbox = append(c.mailbox[:i], c.mailbox[i+1:]...)
				return m.src, m.data, nil
			}
		}
		if c.world.isAborted() {
			return 0, nil, ErrAborted
		}
		if !deadline.IsZero() {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				return 0, nil, ErrTimeout
			}
			t := time.AfterFunc(remaining, func() {
				c.mu.Lock()
				c.cond.Broadcast()
				c.mu.Unlock()
			})
			c.cond.Wait()
			t.Stop()
		} else {
			c.cond.Wait()
		}
	}
}

// Collective tag space: collectives use tags above this base so they
// do not collide with application point-to-point traffic. MPI requires
// every rank to call collectives in the same order, so a per-operation
// call counter keeps consecutive collectives' messages apart.
const collTagBase = 1 << 28

// Collective operation indices into collSeq.
const (
	collBarrier = iota
	collBcast
	collGather
	collReduce
)

// collTag mints the tag pair base for the next call of operation op.
func (c *Comm) collTag(op int) int {
	c.mu.Lock()
	seq := c.collSeq[op]
	c.collSeq[op]++
	c.mu.Unlock()
	return collTagBase + (seq*8+op)*2
}

// Barrier blocks until every rank has entered it (dissemination via
// rank 0).
func (c *Comm) Barrier() error {
	tag := c.collTag(collBarrier)
	if c.rank == 0 {
		for i := 1; i < c.Size(); i++ {
			if _, _, err := c.Recv(AnySource, tag, 0); err != nil {
				return err
			}
		}
		for i := 1; i < c.Size(); i++ {
			if err := c.Send(i, tag+1, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.Send(0, tag, nil); err != nil {
		return err
	}
	_, _, err := c.Recv(0, tag+1, 0)
	return err
}

// Bcast distributes root's buffer to every rank, returning each rank's
// copy.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	tag := c.collTag(collBcast)
	if c.rank == root {
		for i := 0; i < c.Size(); i++ {
			if i == root {
				continue
			}
			if err := c.Send(i, tag, data); err != nil {
				return nil, err
			}
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		return cp, nil
	}
	_, got, err := c.Recv(root, tag, 0)
	return got, err
}

// Gather collects each rank's buffer at root (nil elsewhere), ordered
// by rank.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	tag := c.collTag(collGather)
	if c.rank != root {
		return nil, c.Send(root, tag, data)
	}
	out := make([][]byte, c.Size())
	cp := make([]byte, len(data))
	copy(cp, data)
	out[c.rank] = cp
	for i := 0; i < c.Size()-1; i++ {
		src, got, err := c.Recv(AnySource, tag, 0)
		if err != nil {
			return nil, err
		}
		out[src] = got
	}
	return out, nil
}

// ReduceSum sums each rank's value at root (0 elsewhere).
func (c *Comm) ReduceSum(root int, value int64) (int64, error) {
	tag := c.collTag(collReduce)
	buf := make([]byte, 8)
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(value) >> uint(56-8*i))
	}
	if c.rank != root {
		return 0, c.Send(root, tag, buf)
	}
	sum := value
	for i := 0; i < c.Size()-1; i++ {
		_, got, err := c.Recv(AnySource, tag, 0)
		if err != nil {
			return 0, err
		}
		var v uint64
		for j := 0; j < 8; j++ {
			v = v<<8 | uint64(got[j])
		}
		sum += int64(v)
	}
	return sum, nil
}

// AllReduceSum sums across all ranks and distributes the result.
func (c *Comm) AllReduceSum(value int64) (int64, error) {
	sum, err := c.ReduceSum(0, value)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 8)
	if c.rank == 0 {
		for i := 0; i < 8; i++ {
			buf[i] = byte(uint64(sum) >> uint(56-8*i))
		}
	}
	got, err := c.Bcast(0, buf)
	if err != nil {
		return 0, err
	}
	var v uint64
	for j := 0; j < 8; j++ {
		v = v<<8 | uint64(got[j])
	}
	return int64(v), nil
}
