package mpi

import (
	"errors"
	"fmt"
	"time"

	"snipe/internal/xdr"
)

// Bridge connects ranks of different worlds — the inter-operability
// layer PVMPI and MPI Connect provide between vendor MPIs (§6.1). The
// two implementations differ exactly where the paper says they do: the
// PVMPI bridge routes every message through PVM daemons and registers
// names with the PVM master, while the MPI Connect bridge resolves
// names through RC metadata and sends over direct SNIPE connections.
type Bridge interface {
	// Register makes (world, rank) reachable and installs its delivery
	// callback.
	Register(world string, rank int, deliver func(srcWorld string, srcRank, tag int, data []byte)) error
	// Send delivers data from (srcWorld, srcRank) to (dstWorld, dstRank).
	Send(srcWorld string, srcRank int, dstWorld string, dstRank, tag int, data []byte) error
	// Close releases bridge resources.
	Close()
}

// ErrNoBridge indicates inter-communication before ConnectBridge.
var ErrNoBridge = errors.New("mpi: world has no bridge connected")

// encodeInter packs the bridge payload envelope.
func encodeInter(srcWorld string, srcRank, tag int, data []byte) []byte {
	e := xdr.NewEncoder(32 + len(data))
	e.PutString(srcWorld)
	e.PutInt32(int32(srcRank))
	e.PutInt32(int32(tag))
	e.PutBytes(data)
	return e.Bytes()
}

// Per-field wire-decode caps: world names are short, payloads are
// bounded by the comm layer's message limit.
const (
	maxWireWorld = 4096
	maxWireData  = 64 << 20 // comm.MaxMessageSize, without importing comm here
)

// decodeInter unpacks the bridge payload envelope.
func decodeInter(b []byte) (srcWorld string, srcRank, tag int, data []byte, err error) {
	d := xdr.NewDecoder(b)
	if srcWorld, err = d.StringMax(maxWireWorld); err != nil {
		return
	}
	var r, t int32
	if r, err = d.Int32(); err != nil {
		return
	}
	if t, err = d.Int32(); err != nil {
		return
	}
	data, err = d.BytesCopyMax(maxWireData)
	return srcWorld, int(r), int(t), data, err
}

// ConnectBridge attaches every rank of the world to the bridge,
// forming the paper's inter-communicator: deliveries land in each
// rank's inter-mailbox for InterRecv.
func (w *World) ConnectBridge(b Bridge) error {
	var err error
	w.bridgeOnce.Do(func() {
		w.bridge = b
		for i := 0; i < w.size; i++ {
			c := w.comms[i]
			regErr := b.Register(w.name, i, func(srcWorld string, srcRank, tag int, data []byte) {
				c.mu.Lock()
				c.interBox = append(c.interBox, interMessage{srcWorld: srcWorld, srcRank: srcRank, tag: tag, data: data})
				c.cond.Broadcast()
				c.mu.Unlock()
			})
			if regErr != nil && err == nil {
				err = regErr
			}
		}
	})
	return err
}

// InterSend sends across the bridge to (dstWorld, dstRank).
func (c *Comm) InterSend(dstWorld string, dstRank, tag int, data []byte) error {
	b := c.world.bridge
	if b == nil {
		return ErrNoBridge
	}
	return b.Send(c.world.name, c.rank, dstWorld, dstRank, tag, data)
}

// InterRecv returns the next bridged message matching tag (AnyTag
// wildcard).
func (c *Comm) InterRecv(tag int, timeout time.Duration) (srcWorld string, srcRank int, data []byte, err error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		for i, m := range c.interBox {
			if tag == AnyTag || m.tag == tag {
				c.interBox = append(c.interBox[:i], c.interBox[i+1:]...)
				return m.srcWorld, m.srcRank, m.data, nil
			}
		}
		if c.world.isAborted() {
			return "", 0, nil, ErrAborted
		}
		if !deadline.IsZero() {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				return "", 0, nil, ErrTimeout
			}
			t := time.AfterFunc(remaining, func() {
				c.mu.Lock()
				c.cond.Broadcast()
				c.mu.Unlock()
			})
			c.cond.Wait()
			t.Stop()
		} else {
			c.cond.Wait()
		}
	}
}

// bridgeKey identifies a registered rank.
type bridgeKey struct {
	world string
	rank  int
}

func (k bridgeKey) String() string { return fmt.Sprintf("%s:%d", k.world, k.rank) }
