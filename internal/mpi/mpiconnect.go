package mpi

import (
	"fmt"
	"sync"

	"snipe/internal/comm"
	"snipe/internal/naming"
)

// mpiConnectTag is the SNIPE message tag carrying bridged MPI traffic.
const mpiConnectTag uint32 = 0x4D504943 // "MPIC", below the system range

// MPIConnectBridge is the paper's MPI Connect: PVMPI re-based on SNIPE
// "for name resolution and across host communication instead of
// utilizing PVM" (§6.1). Each bridged rank gets a SNIPE endpoint whose
// address is published as RC metadata, and inter-MPP messages travel
// over direct connections — no daemon hop and "no virtual machine to
// disappear", which is why the paper found it "easier to maintain" and
// "slightly higher point-to-point communication performance".
type MPIConnectBridge struct {
	cat naming.Catalog

	mu        sync.Mutex
	endpoints map[bridgeKey]*comm.Endpoint
}

// NewMPIConnectBridge builds a bridge publishing names in cat.
func NewMPIConnectBridge(cat naming.Catalog) *MPIConnectBridge {
	return &MPIConnectBridge{cat: cat, endpoints: make(map[bridgeKey]*comm.Endpoint)}
}

// rankURN is the global name of a bridged rank — unlike PVM TIDs,
// valid across the whole metacomputer.
func rankURN(world string, rank int) string {
	return naming.ProcessURN("mpi-"+world, fmt.Sprintf("rank-%d", rank))
}

// Register gives (world, rank) a SNIPE endpoint and publishes it.
func (b *MPIConnectBridge) Register(world string, rank int, deliver func(string, int, int, []byte)) error {
	urn := rankURN(world, rank)
	ep := comm.NewEndpoint(urn,
		comm.WithResolver(naming.NewResolver(b.cat)),
		comm.WithHandler(func(m *comm.Message) {
			srcWorld, srcRank, tag, data, err := decodeInter(m.Payload)
			if err == nil {
				deliver(srcWorld, srcRank, tag, data)
			}
		}, mpiConnectTag))
	route, err := ep.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		ep.Close()
		return fmt.Errorf("mpi: mpiconnect register %s: %w", urn, err)
	}
	if err := naming.Register(b.cat, urn, []comm.Route{route}); err != nil {
		ep.Close()
		return err
	}
	b.mu.Lock()
	b.endpoints[bridgeKey{world, rank}] = ep
	b.mu.Unlock()
	return nil
}

// Send delivers directly to the destination rank's endpoint, resolved
// through RC metadata.
func (b *MPIConnectBridge) Send(srcWorld string, srcRank int, dstWorld string, dstRank, tag int, data []byte) error {
	b.mu.Lock()
	ep, ok := b.endpoints[bridgeKey{srcWorld, srcRank}]
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("mpi: mpiconnect: %s:%d not registered here", srcWorld, srcRank)
	}
	return ep.Send(rankURN(dstWorld, dstRank), mpiConnectTag, encodeInter(srcWorld, srcRank, tag, data))
}

// Close shuts every endpoint and withdraws the names.
func (b *MPIConnectBridge) Close() {
	b.mu.Lock()
	eps := b.endpoints
	b.endpoints = make(map[bridgeKey]*comm.Endpoint)
	b.mu.Unlock()
	for key, ep := range eps {
		naming.Unregister(b.cat, rankURN(key.world, key.rank))
		ep.Close()
	}
}
