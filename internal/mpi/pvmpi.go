package mpi

import (
	"fmt"
	"sync"
	"time"

	"snipe/internal/pvm"
)

// pvmpiTag is the PVM message tag carrying bridged MPI traffic.
const pvmpiTag = 7777

// PVMPIBridge is the paper's PVMPI: every bridged rank is enrolled as
// a PVM task, names are registered through the (centralized) virtual
// machine, and every inter-MPP message takes PVM's default route —
// through the local pvmd and the remote pvmd. The bridge "suffered
// from the need to provide access to a PVM daemon pvmd at all times"
// (§6.1); Kill the master and the bridge stops registering.
type PVMPIBridge struct {
	daemon *pvm.Daemon // the pvmd this MPP's relay tasks enrol with

	directory map[bridgeKey]pvm.TID // name registry (guarded by directoryLock)
	relays    map[bridgeKey]*pvm.TaskCtx
}

// relayRegistry holds the relay program shared by all PVMPI bridges in
// this process; the deliver callback is smuggled through a registry
// keyed by argument.
var (
	relayMu       sync.Mutex
	relayHandlers = map[string]func(srcWorld string, srcRank, tag int, data []byte){}
	relayReg      = pvm.NewRegistry()
	relaySeq      int
)

func init() {
	relayReg.Register("pvmpi-relay", func(ctx *pvm.TaskCtx) error {
		key := ctx.Args()[0]
		relayMu.Lock()
		deliver := relayHandlers[key]
		relayMu.Unlock()
		for {
			m, err := ctx.Recv(pvmpiTag, time.Hour)
			if err != nil {
				return nil // host died or timeout: relay ends
			}
			srcWorld, srcRank, tag, data, err := decodeInter(m.Payload)
			if err == nil && deliver != nil {
				deliver(srcWorld, srcRank, tag, data)
			}
		}
	})
}

// RelayRegistry returns the program registry PVM daemons must be built
// with for PVMPI bridging.
func RelayRegistry() *pvm.Registry { return relayReg }

// NewPVMPIBridge builds a bridge whose relay tasks enrol with the
// given pvmd. Bridges on different "MPPs" should use different pvmds
// of one virtual machine; their directories must be shared via
// ShareDirectory (PVMPI used PVM's group server for this role).
func NewPVMPIBridge(d *pvm.Daemon) *PVMPIBridge {
	return &PVMPIBridge{
		daemon:    d,
		directory: make(map[bridgeKey]pvm.TID),
		relays:    make(map[bridgeKey]*pvm.TaskCtx),
	}
}

// directoryLock serialises access to bridge directories, shared or
// not.
var directoryLock sync.Mutex

// ShareDirectory links two bridges' name registries, modelling PVM's
// global group/name service (which itself lived on the master). After
// the call both bridges resolve each other's enrolled ranks.
func ShareDirectory(a, b *PVMPIBridge) {
	directoryLock.Lock()
	defer directoryLock.Unlock()
	for k, v := range b.directory {
		a.directory[k] = v
	}
	b.directory = a.directory
}

// Register enrols (world, rank) as a PVM relay task.
func (b *PVMPIBridge) Register(world string, rank int, deliver func(string, int, int, []byte)) error {
	key := bridgeKey{world, rank}
	relayMu.Lock()
	relaySeq++
	handlerKey := fmt.Sprintf("%s#%d", key, relaySeq)
	relayHandlers[handlerKey] = deliver
	relayMu.Unlock()

	tid, err := b.daemon.SpawnLocal("pvmpi-relay", []string{handlerKey})
	if err != nil {
		return fmt.Errorf("mpi: pvmpi enrol %s: %w", key, err)
	}
	ctx, ok := b.daemon.Task(tid)
	if !ok {
		return fmt.Errorf("mpi: pvmpi relay task vanished")
	}
	directoryLock.Lock()
	b.directory[key] = tid
	b.relays[key] = ctx
	directoryLock.Unlock()
	return nil
}

// Send routes a message through the PVM daemons.
func (b *PVMPIBridge) Send(srcWorld string, srcRank int, dstWorld string, dstRank, tag int, data []byte) error {
	src := bridgeKey{srcWorld, srcRank}
	dst := bridgeKey{dstWorld, dstRank}
	directoryLock.Lock()
	srcCtx, okSrc := b.relays[src]
	dstTID, okDst := b.directory[dst]
	directoryLock.Unlock()
	if !okSrc {
		return fmt.Errorf("mpi: pvmpi: %s not enrolled here", src)
	}
	if !okDst {
		return fmt.Errorf("mpi: pvmpi: %s not in directory", dst)
	}
	return srcCtx.Send(dstTID, pvmpiTag, encodeInter(srcWorld, srcRank, tag, data))
}

// Close is a no-op; relay tasks die with their pvmds.
func (b *PVMPIBridge) Close() {}
