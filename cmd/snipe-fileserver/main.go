// Command snipe-fileserver runs one SNIPE file server (paper §3.2),
// accepting sink/source traffic over SNIPE messaging and exporting the
// store over HTTP. Start several with -replicas to run a replication
// daemon alongside.
//
// Usage:
//
//	snipe-fileserver -name fs1 -rc 127.0.0.1:7001 -http 127.0.0.1:8081 -replicas 2
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"snipe/internal/comm"
	"snipe/internal/fileserv"
	"snipe/internal/naming"
	"snipe/internal/rcds"
)

func main() {
	log.SetPrefix("snipe-fileserver: ")
	log.SetFlags(0)
	name := flag.String("name", "fs1", "file server name")
	rc := flag.String("rc", "127.0.0.1:7001", "comma-separated RC server addresses")
	secret := flag.String("secret", "", "RC shared secret")
	httpAddr := flag.String("http", "", "optional HTTP export address")
	replicas := flag.Int("replicas", 0, "run a replication daemon targeting this many replicas (0 = off)")
	flag.Parse()

	var sec []byte
	if *secret != "" {
		sec = []byte(*secret)
	}
	client := rcds.NewClient(strings.Split(*rc, ","), sec, rcds.WithReadCache())
	defer client.Close()
	cat := naming.ClientCatalog(client)
	pingCtx, cancelPing := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelPing()
	if _, err := client.Ping(pingCtx); err != nil {
		log.Fatalf("RC servers unreachable: %v", err)
	}
	fs, err := fileserv.NewServer(*name, cat, nil)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("file server %s registered", fs.URN())

	if *httpAddr != "" {
		go func() {
			mux := http.NewServeMux()
			mux.Handle("/files/", fs)
			log.Printf("HTTP export on %s", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				log.Printf("http: %v", err)
			}
		}()
	}

	var rep *fileserv.Replicator
	if *replicas > 0 {
		ep := comm.NewEndpoint(naming.ProcessURN(*name, "replicator"),
			comm.WithResolver(naming.NewResolver(cat)))
		route, err := ep.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
		if err != nil {
			log.Fatal(err)
		}
		naming.Register(cat, ep.URN(), []comm.Route{route})
		rep = fileserv.NewReplicator(fileserv.NewClient(cat, ep),
			fileserv.ReplicationPolicy{MinReplicas: *replicas, Interval: 2 * time.Second})
		rep.Start()
		defer ep.Close()
		log.Printf("replication daemon targeting %d replicas", *replicas)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("shutting down")
	if rep != nil {
		rep.Stop()
	}
	fs.Close()
}
