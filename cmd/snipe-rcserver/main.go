// Command snipe-rcserver runs one RC/metadata server replica (paper
// §3.1). Replicas given each other's addresses form a master–master
// replicated registry.
//
// Usage:
//
//	snipe-rcserver -addr 127.0.0.1:7001 -origin rc1 \
//	    -peers 127.0.0.1:7002,127.0.0.1:7003 -secret s3cret
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"snipe/internal/rcds"
)

func main() {
	log.SetPrefix("snipe-rcserver: ")
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:7001", "listen address")
	origin := flag.String("origin", "", "replica identity (default: the listen address)")
	peers := flag.String("peers", "", "comma-separated peer replica addresses")
	secret := flag.String("secret", "", "shared secret for HMAC authentication")
	antiEntropy := flag.Duration("anti-entropy", 500*time.Millisecond, "anti-entropy pull interval")
	dataFile := flag.String("data", "", "snapshot file for catalog persistence across restarts")
	saveEvery := flag.Duration("save-every", 10*time.Second, "snapshot interval when -data is set")
	flag.Parse()

	id := *origin
	if id == "" {
		id = *addr
	}
	opts := []rcds.ServerOption{rcds.WithAntiEntropyInterval(*antiEntropy)}
	if *secret != "" {
		opts = append(opts, rcds.WithSecret([]byte(*secret)))
	}
	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
		opts = append(opts, rcds.WithPeers(peerList...))
	}
	store := rcds.NewStore(id)
	if *dataFile != "" {
		loaded, err := rcds.LoadFile(*dataFile, id)
		if err != nil {
			log.Fatalf("loading %s: %v", *dataFile, err)
		}
		store = loaded
		log.Printf("catalog restored from %s", *dataFile)
	}
	server := rcds.NewServer(store, opts...)
	if err := server.Start(*addr); err != nil {
		log.Fatal(err)
	}
	log.Printf("replica %s serving on %s (peers: %v)", id, server.Addr(), peerList)

	stopSave := make(chan struct{})
	if *dataFile != "" {
		go func() {
			ticker := time.NewTicker(*saveEvery)
			defer ticker.Stop()
			for {
				select {
				case <-stopSave:
					return
				case <-ticker.C:
					if err := store.SaveFile(*dataFile); err != nil {
						log.Printf("snapshot: %v", err)
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("shutting down")
	close(stopSave)
	server.Close()
	if *dataFile != "" {
		if err := store.SaveFile(*dataFile); err != nil {
			log.Printf("final snapshot: %v", err)
		} else {
			log.Printf("catalog saved to %s", *dataFile)
		}
	}
}
