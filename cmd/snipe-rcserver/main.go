// Command snipe-rcserver runs one RC/metadata server replica (paper
// §3.1). Replicas given each other's addresses form a master–master
// replicated registry.
//
// Usage:
//
//	snipe-rcserver -addr 127.0.0.1:7001 -origin rc1 \
//	    -peers 127.0.0.1:7002,127.0.0.1:7003 -secret s3cret
//
// A sharded catalog deployment passes the shard map and this replica's
// group, and usually bounds the op log so rejoining replicas catch up
// via snapshot:
//
//	snipe-rcserver -addr h1:7001 -origin rc0-0 -peers h2:7001 \
//	    -shard-map "v1 epoch=1 groups=h1:7001,h2:7001|h3:7001,h4:7001" \
//	    -shard-self 0 -compact-keep 65536
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"snipe/internal/rcds"
)

func main() {
	log.SetPrefix("snipe-rcserver: ")
	log.SetFlags(0)
	addr := flag.String("addr", "127.0.0.1:7001", "listen address")
	origin := flag.String("origin", "", "replica identity (default: the listen address)")
	peers := flag.String("peers", "", "comma-separated peer replica addresses")
	secret := flag.String("secret", "", "shared secret for HMAC authentication")
	antiEntropy := flag.Duration("anti-entropy", 500*time.Millisecond, "anti-entropy pull interval")
	dataFile := flag.String("data", "", "snapshot file for catalog persistence across restarts")
	saveEvery := flag.Duration("save-every", 10*time.Second, "snapshot interval when -data is set")
	shardMap := flag.String("shard-map", "", `shard map this replica enforces, e.g. "v1 epoch=1 groups=a:1,a:2|b:1,b:2"`)
	shardSelf := flag.Int("shard-self", 0, "this replica's group index in -shard-map")
	compactKeep := flag.Int("compact-keep", 0, "op-log tail to keep per origin (0 = never compact; rejoiners replay history)")
	flag.Parse()

	id := *origin
	if id == "" {
		id = *addr
	}
	opts := []rcds.ServerOption{rcds.WithAntiEntropyInterval(*antiEntropy)}
	if *secret != "" {
		opts = append(opts, rcds.WithSecret([]byte(*secret)))
	}
	var peerList []string
	if *peers != "" {
		peerList = strings.Split(*peers, ",")
		opts = append(opts, rcds.WithPeers(peerList...))
	}
	var shard *rcds.ShardMap
	if *shardMap != "" {
		m, err := rcds.ParseShardMap(*shardMap)
		if err != nil {
			log.Fatalf("-shard-map: %v", err)
		}
		if *shardSelf < 0 || *shardSelf >= m.NumShards() {
			log.Fatalf("-shard-self %d out of range for %d groups", *shardSelf, m.NumShards())
		}
		shard = m
		opts = append(opts, rcds.WithShard(*shardSelf, m))
	}
	if *compactKeep > 0 {
		opts = append(opts, rcds.WithLogCompaction(*compactKeep))
	}
	store := rcds.NewStore(id)
	if *dataFile != "" {
		loaded, err := rcds.LoadFile(*dataFile, id)
		if err != nil {
			log.Fatalf("loading %s: %v", *dataFile, err)
		}
		store = loaded
		log.Printf("catalog restored from %s", *dataFile)
	}
	if shard != nil {
		// Seed the map into this replica's config namespace so routing
		// clients can bootstrap from it; group peers converge on the
		// same value via replication.
		store.Set(rcds.ShardMapURI, rcds.AttrShardMap, shard.Format())
	}
	server := rcds.NewServer(store, opts...)
	if err := server.Start(*addr); err != nil {
		log.Fatal(err)
	}
	if shard != nil {
		log.Printf("replica %s serving on %s (shard group %d of %d, peers: %v)",
			id, server.Addr(), *shardSelf, shard.NumShards(), peerList)
	} else {
		log.Printf("replica %s serving on %s (peers: %v)", id, server.Addr(), peerList)
	}

	stopSave := make(chan struct{})
	if *dataFile != "" {
		go func() {
			ticker := time.NewTicker(*saveEvery)
			defer ticker.Stop()
			for {
				select {
				case <-stopSave:
					return
				case <-ticker.C:
					if err := store.SaveFile(*dataFile); err != nil {
						log.Printf("snapshot: %v", err)
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("shutting down")
	close(stopSave)
	server.Close()
	if *dataFile != "" {
		if err := store.SaveFile(*dataFile); err != nil {
			log.Printf("final snapshot: %v", err)
		} else {
			log.Printf("catalog saved to %s", *dataFile)
		}
	}
}
