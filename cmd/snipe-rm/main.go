// Command snipe-rm runs one resource manager (paper §3.5). Start
// several against the same RC servers for redundancy; clients fail
// over between them.
//
// Usage:
//
//	snipe-rm -name rm1 -rc 127.0.0.1:7001,127.0.0.1:7002
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/rm"
)

func main() {
	log.SetPrefix("snipe-rm: ")
	log.SetFlags(0)
	name := flag.String("name", "rm1", "resource manager name")
	rc := flag.String("rc", "127.0.0.1:7001", "comma-separated RC server addresses")
	secret := flag.String("secret", "", "RC shared secret")
	flag.Parse()

	var sec []byte
	if *secret != "" {
		sec = []byte(*secret)
	}
	client := rcds.NewClient(strings.Split(*rc, ","), sec, rcds.WithReadCache())
	defer client.Close()
	cat := naming.ClientCatalog(client)
	pingCtx, cancelPing := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelPing()
	if _, err := client.Ping(pingCtx); err != nil {
		log.Fatalf("RC servers unreachable: %v", err)
	}
	m, err := rm.NewManager(*name, cat, nil)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("resource manager %s registered", m.URN())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("shutting down")
	m.Close()
}
