// Command snipe-console runs a SNIPE console (paper §3.7): an HTTP
// interface onto the metacomputer, including the URI resolver proxy
// that lets any browser inspect any RCDS-registered resource.
//
// Usage:
//
//	snipe-console -rc 127.0.0.1:7001 -http 127.0.0.1:8080
//	snipe-console -rc 127.0.0.1:7001 -stats snipe://hosts/alpha
//	snipe-console -rc 127.0.0.1:7001 -stats all
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"snipe/internal/console"
	"snipe/internal/naming"
	"snipe/internal/rcds"
)

func main() {
	log.SetPrefix("snipe-console: ")
	log.SetFlags(0)
	name := flag.String("name", "", "console name (default: console-<pid>)")
	rc := flag.String("rc", "127.0.0.1:7001", "comma-separated RC server addresses")
	secret := flag.String("secret", "", "RC shared secret")
	httpAddr := flag.String("http", "127.0.0.1:8080", "HTTP listen address")
	text := flag.Bool("text", false, "print a one-shot text listing instead of serving HTTP")
	statsHost := flag.String("stats", "", "print a one-shot metrics snapshot for the host URL (or 'all')")
	flag.Parse()

	if *name == "" {
		// Each invocation is a distinct SNIPE process: a reused URN would
		// collide with the comm layer's per-source duplicate suppression
		// on the daemons (sequence numbers restart at 1).
		*name = fmt.Sprintf("console-%d", os.Getpid())
	}
	var sec []byte
	if *secret != "" {
		sec = []byte(*secret)
	}
	client := rcds.NewClient(strings.Split(*rc, ","), sec)
	defer client.Close()
	cat := naming.ClientCatalog(client)
	pingCtx, cancelPing := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelPing()
	if _, err := client.Ping(pingCtx); err != nil {
		log.Fatalf("RC servers unreachable: %v", err)
	}
	con, err := console.New(*name, cat)
	if err != nil {
		log.Fatal(err)
	}
	defer con.Close()

	if *text {
		out, err := con.RenderText()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
		return
	}
	if *statsHost != "" {
		host := *statsHost
		if host == "all" {
			host = ""
		}
		out, err := con.RenderStats(host)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(out)
		return
	}
	url := "http://" + *httpAddr
	if err := con.RegisterHTTPBinding(url); err != nil {
		log.Fatal(err)
	}
	log.Printf("console %s serving on %s", con.URN(), url)
	log.Fatal(http.ListenAndServe(*httpAddr, con))
}
