// Command snipe-bench regenerates the paper's evaluation artifacts
// (DESIGN.md experiment index E1–E8) and prints them as the
// rows/series the paper reports.
//
// Usage:
//
//	snipe-bench -experiment fig1|multipath|commtail|mpiconnect|availability|multicast|migration|scalability|failover|liveness|service|rudploss|all
//	snipe-bench -experiment fig1 -quick
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"snipe/internal/bench"
	"snipe/internal/netsim"
)

var (
	experiment = flag.String("experiment", "all", "which experiment to run")
	quick      = flag.Bool("quick", false, "reduced sweeps for a fast run")
	fig1Out    = flag.String("fig1-out", "BENCH_fig1.json", "path for the fig1 JSON artifact (empty to skip)")
	mpOut      = flag.String("multipath-out", "BENCH_multipath.json", "path for the multipath JSON artifact (empty to skip)")
	floOut     = flag.String("failover-out", "BENCH_failover.json", "path for the liveness/detection JSON artifact (empty to skip)")
	ctOut      = flag.String("commtail-out", "BENCH_commtail.json", "path for the comm tail-latency JSON artifact (empty to skip)")
	svcOut     = flag.String("service-out", "BENCH_service.json", "path for the service-group kill JSON artifact (empty to skip)")
	catOut     = flag.String("catalog-out", "BENCH_catalog.json", "path for the sharded-catalog JSON artifact (empty to skip)")
)

func main() {
	log.SetFlags(0)
	flag.Parse()
	runners := map[string]func() error{
		"fig1":         runFig1,
		"mpiconnect":   runMPIConnect,
		"availability": runAvailability,
		"multicast":    runMulticast,
		"migration":    runMigration,
		"scalability":  runScalability,
		"failover":     runFailover,
		"liveness":     runLiveness,
		"service":      runService,
		"rudploss":     runRUDPLoss,
		"paths":        runPaths,
		"multipath":    runMultipath,
		"commtail":     runCommTail,
		"catalog":      runCatalog,
	}
	order := []string{"fig1", "multipath", "commtail", "catalog", "mpiconnect", "availability", "multicast", "migration", "scalability", "failover", "liveness", "service", "rudploss", "paths"}
	if *experiment == "all" {
		for _, name := range order {
			if err := runners[name](); err != nil {
				log.Fatalf("%s: %v", name, err)
			}
		}
		return
	}
	run, ok := runners[*experiment]
	if !ok {
		log.Fatalf("unknown experiment %q (want one of %v or all)", *experiment, order)
	}
	if err := run(); err != nil {
		log.Fatalf("%s: %v", *experiment, err)
	}
}

func tab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func runFig1() error {
	fmt.Println("== E1 / Fig. 1: Bandwidth (MB/s) offered to SNIPE client applications on various media ==")
	sizes := bench.Fig1Sizes
	if *quick {
		sizes = []int{1024, 16384, 262144}
	}
	points, err := bench.Fig1Sweep(nil, nil, sizes)
	if err != nil {
		return err
	}
	// Pivot: rows = message size, columns = medium/transport.
	type col struct{ medium, transport string }
	var cols []col
	seen := map[col]bool{}
	table := map[col]map[int]float64{}
	for _, p := range points {
		c := col{p.Medium, p.Transport}
		if !seen[c] {
			seen[c] = true
			cols = append(cols, c)
			table[c] = map[int]float64{}
		}
		table[c][p.MsgSize] = p.MBps
	}
	w := tab()
	fmt.Fprint(w, "msg size")
	for _, c := range cols {
		fmt.Fprintf(w, "\t%s %s", c.medium, c.transport)
	}
	fmt.Fprintln(w)
	for _, s := range sizes {
		fmt.Fprintf(w, "%d", s)
		for _, c := range cols {
			fmt.Fprintf(w, "\t%.2f", table[c][s])
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("-- end-to-end ack latency (µs) per point --")
	w = tab()
	fmt.Fprintln(w, "medium\ttransport\tmsg size\tp50\tp90\tp99\tmax")
	for _, p := range points {
		if p.AckLatencyUs == nil {
			continue
		}
		h := p.AckLatencyUs
		fmt.Fprintf(w, "%s\t%s\t%d\t%.0f\t%.0f\t%.0f\t%.0f\n",
			p.Medium, p.Transport, p.MsgSize,
			h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if *fig1Out != "" {
		if err := bench.WriteFig1Artifact(*fig1Out, points, *quick); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d points)\n", *fig1Out, len(points))
	}
	return nil
}

func runMultipath() error {
	fmt.Println("== multipath / §5.3: striped transmission over two media vs either medium alone ==")
	sizes := bench.MultipathSizes
	if *quick {
		sizes = []int{1048576}
	}
	points, scores, err := bench.MultipathSweep(sizes)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "media\tmsg size\tstriped MB/s\tbest single MB/s\tspeedup")
	for _, p := range points {
		fmt.Fprintf(w, "%s+%s\t%d\t%.2f\t%.2f\t%.2fx\n",
			p.Media[0], p.Media[1], p.MsgSize, p.MBps, p.BestSingle, p.Speedup)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// The claim under test: at large sizes the striped aggregate must
	// strictly beat the best single medium.
	for _, p := range points {
		if p.MsgSize >= 1<<20 && p.MBps <= p.BestSingle {
			return fmt.Errorf("multipath: striped %.2f MB/s did not beat best single %.2f MB/s at %d bytes",
				p.MBps, p.BestSingle, p.MsgSize)
		}
	}
	fmt.Println("-- sender route scores after the final striped run --")
	w = tab()
	fmt.Fprintln(w, "route\tscore\trtt µs\tgoodput MB/s\terr rate\tsamples")
	for _, s := range scores {
		fmt.Fprintf(w, "%s\t%.3g\t%.0f\t%.2f\t%.3f\t%d\n",
			s.Route, s.Score, s.RTTUs, s.GoodputBps/1e6, s.ErrRate, s.Samples)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if *mpOut != "" {
		if err := bench.WriteMultipathArtifact(*mpOut, points, scores, *quick); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d points)\n", *mpOut, len(points))
	}
	return nil
}

func runCommTail() error {
	fmt.Println("== commtail: end-to-end ack latency tail under endpoint fan-in, and local-transport goodput ==")
	// The tail claim needs scale: ≥1k concurrent endpoints even in
	// quick mode; quick only trims the per-endpoint message count.
	fan := []struct{ endpoints, msgs int }{{256, 20}, {1024, 20}}
	streamMsgs := 64
	if *quick {
		fan = []struct{ endpoints, msgs int }{{1024, 5}}
		streamMsgs = 16
	}
	const msgSize = 4096
	var points []bench.CommTailPoint
	w := tab()
	fmt.Fprintln(w, "endpoints\tmsgs/ep\tp50 µs\tp99 µs\tp999 µs\tmax µs\tgoodput MB/s\tack batches")
	for _, f := range fan {
		pt, err := bench.MeasureCommTail(f.endpoints, f.msgs, msgSize)
		if err != nil {
			return err
		}
		points = append(points, pt)
		fmt.Fprintf(w, "%d\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.2f\t%d\n",
			pt.Endpoints, pt.MsgsPerEP, pt.P50Us, pt.P99Us, pt.P999Us, pt.MaxUs,
			pt.GoodputMBps, pt.AckBatches)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	fmt.Println("-- single-stream goodput: tcp loopback vs the local transports --")
	var streams []bench.CommTailStream
	w = tab()
	fmt.Fprintln(w, "transport\tmsg size\tMB/s")
	byTransport := map[string]float64{}
	for _, tr := range []string{"tcp", "unix", "inproc"} {
		st, err := bench.MeasureCommStream(tr, 1<<20, streamMsgs)
		if err != nil {
			return err
		}
		streams = append(streams, st)
		byTransport[tr] = st.MBps
		fmt.Fprintf(w, "%s\t%d\t%.2f\n", st.Transport, st.MsgSize, st.MBps)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// The claims under test: the local transports must beat looping
	// back through kernel TCP on the identical endpoint stack.
	for _, tr := range []string{"unix", "inproc"} {
		if byTransport[tr] <= byTransport["tcp"] {
			return fmt.Errorf("commtail: %s goodput %.2f MB/s did not beat tcp loopback %.2f MB/s",
				tr, byTransport[tr], byTransport["tcp"])
		}
	}
	if *ctOut != "" {
		if err := bench.WriteCommTailArtifact(*ctOut, points, streams, *quick); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d points, %d streams)\n", *ctOut, len(points), len(streams))
	}
	return nil
}

func runCatalog() error {
	fmt.Println("== catalog: sharded catalog at scale (load, placement, watch fan-out, snapshot rejoin) ==")
	cfg := bench.CatalogDefaults(*quick)
	fmt.Printf("%d URIs across %d shard groups x %d replicas, %d writers, %d watchers\n",
		cfg.URIs, cfg.Groups, cfg.Replicas, cfg.Writers, cfg.Watchers)
	res, err := bench.MeasureCatalog(cfg)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "phase\tmetric\tvalue")
	fmt.Fprintf(w, "load\twrite ops/s\t%.0f\n", res.WriteOpsPerSec)
	fmt.Fprintf(w, "load\tsecs\t%.2f\n", res.LoadSecs)
	fmt.Fprintf(w, "read\tread ops/s\t%.0f\n", res.ReadOpsPerSec)
	fmt.Fprintf(w, "read\tp50 / p99 ms\t%.2f / %.2f\n", res.ReadP50Ms, res.ReadP99Ms)
	fmt.Fprintf(w, "watch\twatchers\t%d\n", res.Watchers)
	fmt.Fprintf(w, "watch\twake p50 / p99 ms\t%.1f / %.1f\n", res.WatchWakeP50Ms, res.WatchWakeP99Ms)
	fmt.Fprintf(w, "rejoin\tmissed history ops\t%d\n", res.RejoinHistoryOps)
	fmt.Fprintf(w, "rejoin\tsnapshot ops\t%d\n", res.RejoinSnapshotOps)
	fmt.Fprintf(w, "rejoin\tsecs\t%.2f\n", res.RejoinSecs)
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("per-group URIs %v; sampled %d URIs: %d misplaced; %d cross-group origins; %d shard rejects, %d client redirects\n",
		res.PerGroupURIs, res.PlacementSample, res.MisplacedURIs, res.CrossGroupOrigins,
		res.ShardRejects, res.WrongShardRedirects)
	// The claims under test: every group owns part of the population and
	// nothing lands off-shard; every watcher wakes; the rejoining replica
	// converges through the compacted snapshot, transferring less than
	// the history it missed.
	for g, n := range res.PerGroupURIs {
		if n <= 1 { // the shard-map config entry alone
			return fmt.Errorf("catalog: group %d holds %d URIs; population not spreading", g, n)
		}
	}
	if res.MisplacedURIs != 0 {
		return fmt.Errorf("catalog: %d of %d sampled URIs present on a non-owning group", res.MisplacedURIs, res.PlacementSample)
	}
	if res.CrossGroupOrigins != 0 {
		return fmt.Errorf("catalog: %d foreign origins in group version vectors; write fan-out escaped its group", res.CrossGroupOrigins)
	}
	if res.WatchTimeouts != 0 {
		return fmt.Errorf("catalog: %d of %d watchers never woke", res.WatchTimeouts, res.Watchers)
	}
	if !res.RejoinConverged {
		return fmt.Errorf("catalog: rejoined replica never converged")
	}
	if !res.RejoinUsedSnapshot {
		return fmt.Errorf("catalog: rejoin did not use the snapshot path")
	}
	if res.RejoinSnapshotOps >= res.RejoinHistoryOps {
		return fmt.Errorf("catalog: snapshot transferred %d ops, not less than the %d missed",
			res.RejoinSnapshotOps, res.RejoinHistoryOps)
	}
	if *catOut != "" {
		if err := bench.WriteCatalogArtifact(*catOut, res, *quick); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *catOut)
	}
	return nil
}

func runMPIConnect() error {
	fmt.Println("== E2 / §6.1: inter-MPP point-to-point, MPI Connect (SNIPE) vs PVMPI (PVM daemon-routed) ==")
	sizes := []int{64, 1024, 4096, 65536}
	if *quick {
		sizes = []int{64, 4096}
	}
	iters := 300
	if *quick {
		iters = 100
	}
	w := tab()
	fmt.Fprintln(w, "msg size\tMPI Connect RTT µs\tPVMPI RTT µs\tMPI Connect MB/s\tPVMPI MB/s\tspeedup")
	for _, s := range sizes {
		mc, err := bench.MeasureE2("mpiconnect", s, iters)
		if err != nil {
			return err
		}
		pv, err := bench.MeasureE2("pvmpi", s, iters)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%.2f\t%.2f\t%.2fx\n",
			s, mc.RTTMicros, pv.RTTMicros, mc.MBps, pv.MBps, pv.RTTMicros/mc.RTTMicros)
	}
	return w.Flush()
}

func runAvailability() error {
	fmt.Println("== E3 / §6: metadata availability with one server down 30% of the run ==")
	queries := 600
	if *quick {
		queries = 200
	}
	w := tab()
	fmt.Fprintln(w, "system\treplicas\tqueries\tfailures\tavailability")
	for _, replicas := range []int{1, 2, 3} {
		r, err := bench.MeasureAvailabilitySNIPE(replicas, queries, 0.3)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f%%\n", r.System, r.Replicas, r.Queries, r.Failures, r.Availability*100)
	}
	pv, err := bench.MeasureAvailabilityPVM(3, queries/4, 0.3)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f%%\n", pv.System, pv.Replicas, pv.Queries, pv.Failures, pv.Availability*100)
	return w.Flush()
}

func runMulticast() error {
	fmt.Println("== E4 / §5.4: multicast delivery with failed routers (members register with >1/2, sends reach >1/2) ==")
	w := tab()
	fmt.Fprintln(w, "routers\tfailed\tmembers\tmsgs\tdelivered\trate")
	cases := [][4]int{{1, 0, 6, 20}, {3, 0, 6, 20}, {3, 1, 6, 20}, {5, 2, 6, 20}, {1, 1, 4, 10}}
	for _, c := range cases {
		r, err := bench.MeasureMulticast(c[0], c[1], c[2], c[3])
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.0f%%\n",
			r.Routers, r.Failed, r.Members, r.Sent, r.Delivered, r.DeliveryRate*100)
	}
	return w.Flush()
}

func runMigration() error {
	fmt.Println("== E5 / §5.6: message delivery across live migration ==")
	msgs := 60
	if *quick {
		msgs = 30
	}
	w := tab()
	fmt.Fprintln(w, "system buffering\tsent\tdelivered\tdowntime")
	for _, buffered := range []bool{true, false} {
		r, err := bench.MeasureMigration(buffered, msgs)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%v\t%d\t%d\t%v\n", r.Buffering, r.Sent, r.Delivered, r.Downtime)
	}
	return w.Flush()
}

func runScalability() error {
	fmt.Println("== E6 / §2.2: host join cost and resource-manager redundancy ==")
	maxHosts := 32
	sample := []int{2, 8, 16, 32}
	if *quick {
		maxHosts, sample = 12, []int{2, 12}
	}
	snipePts, err := bench.MeasureHostJoinSNIPE(maxHosts, sample)
	if err != nil {
		return err
	}
	pvmPts, err := bench.MeasureHostJoinPVM(maxHosts, sample)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "n-th host\tsnipe join µs\tpvm join µs")
	pvmByN := map[int]float64{}
	for _, p := range pvmPts {
		pvmByN[p.N] = p.Micros
	}
	for _, p := range snipePts {
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\n", p.N, p.Micros, pvmByN[p.N])
	}
	w.Flush()

	fmt.Println("-- spawn throughput with redundant RMs (one killed mid-run) --")
	w = tab()
	fmt.Fprintln(w, "RMs\tspawns\tfailures\tspawns/s")
	for _, c := range []struct {
		rms  int
		kill bool
	}{{1, true}, {2, true}, {3, true}} {
		r, err := bench.MeasureSpawnRedundantRMs(c.rms, 3, 40, c.kill)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%.1f\n", r.RMs, r.Spawns, r.Failures, r.SpawnsPerSec)
	}
	return w.Flush()
}

func runFailover() error {
	fmt.Println("== E7 / §6: route failover completeness (preferred interface killed mid-stream) ==")
	w := tab()
	fmt.Fprintln(w, "system buffering\tsent\tdelivered\tswitchover")
	for _, buffered := range []bool{true, false} {
		r, err := bench.MeasureFailover(buffered, 80)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%v\t%d\t%d\t%v\n", r.Buffering, r.Sent, r.Delivered, r.MaxGap)
	}
	return w.Flush()
}

func runLiveness() error {
	fmt.Println("== liveness: failure-detection latency (kill / partition / clean shutdown of one of three daemons) ==")
	points, monitor, err := bench.RunFailoverSuite(*quick)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "mode\theartbeat ms\tsuspect ms\tdead ms\tfirst correct placement ms\tfalse suspects")
	fmtMs := func(v float64) string {
		if v < 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", v)
	}
	for _, p := range points {
		fmt.Fprintf(w, "%s\t%.0f\t%s\t%s\t%s\t%d\n",
			p.Mode, p.HeartbeatMs, fmtMs(p.SuspectMs), fmtMs(p.DeadMs), fmtMs(p.PlacementMs), p.FalseSuspects)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// The claims under test: failures are detected, clean exits are not
	// mistaken for them.
	for _, p := range points {
		if p.Mode != "clean" && p.DeadMs < 0 {
			return fmt.Errorf("liveness: %s victim never declared dead", p.Mode)
		}
		if p.FalseSuspects > 0 {
			return fmt.Errorf("liveness: %s run produced %d false suspicion(s)", p.Mode, p.FalseSuspects)
		}
	}

	fmt.Println("== liveness: hierarchical gossip at cluster scale (group digests vs per-host heartbeats) ==")
	scale, err := bench.RunLivenessScaleSuite(*quick)
	if err != nil {
		return err
	}
	w = tab()
	fmt.Fprintln(w, "hosts\tgroups\tprobe ms\twarmup ms\tcrash suspect ms\tcrash dead ms\tpartition dead ms\theal revive ms\tfalse suspects\tdigest wr/s\tlegacy wr/s\treduction")
	for _, p := range scale {
		fmt.Fprintf(w, "%d\t%d\t%.0f\t%.0f\t%s\t%s\t%s\t%s\t%d\t%.1f\t%.1f\t%.1fx\n",
			p.Hosts, p.Groups, p.ProbeMs, p.WarmupMs,
			fmtMs(p.CrashSuspectMs), fmtMs(p.CrashDeadMs), fmtMs(p.PartitionDeadMs), fmtMs(p.HealReviveMs),
			p.FalseSuspects, p.GossipWritesPerSec, p.LegacyWritesPerSec, p.WriteReduction)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// The scaling claims: detection latency stays within 3× the probe
	// interval at every size, no-fault runs produce zero suspicion, and
	// group digests cut catalog write traffic at least 10× at the
	// largest size.
	for _, p := range scale {
		if p.CrashSuspectMs > 3*p.ProbeMs {
			return fmt.Errorf("liveness: %d hosts mean detection %.1fms exceeds 3x probe interval (%.0fms)",
				p.Hosts, p.CrashSuspectMs, 3*p.ProbeMs)
		}
		if p.FalseSuspects > 0 {
			return fmt.Errorf("liveness: %d hosts no-fault window produced %d false suspicion(s)", p.Hosts, p.FalseSuspects)
		}
		if p.PartitionDeadMs < 0 {
			return fmt.Errorf("liveness: %d hosts partitioned victim never declared dead", p.Hosts)
		}
	}
	if last := scale[len(scale)-1]; last.WriteReduction < 10 {
		return fmt.Errorf("liveness: write reduction %.1fx at %d hosts, want >= 10x", last.WriteReduction, last.Hosts)
	}

	if *floOut != "" {
		if err := bench.WriteFailoverArtifact(*floOut, points, scale, monitor, *quick); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d points, %d scale points)\n", *floOut, len(points), len(scale))
	}
	return nil
}

func runService() error {
	fmt.Println("== service: replicated service group under a mid-run host kill (zero failed calls) ==")
	warm, post := 1500*time.Millisecond, 1200*time.Millisecond
	if *quick {
		warm, post = 500*time.Millisecond, 500*time.Millisecond
	}
	res, err := bench.MeasureServiceKill(3, 4, 32<<10, warm, post)
	if err != nil {
		return err
	}
	w := tab()
	fmt.Fprintln(w, "phase\tsecs\tcalls\tfailures\tcalls/s\tp50 ms\tp99 ms")
	for _, p := range res.Phases {
		fmt.Fprintf(w, "%s\t%.2f\t%d\t%d\t%.1f\t%.1f\t%.1f\n",
			p.Phase, p.Secs, p.Calls, p.Failures, p.CallsPerSec, p.P50Ms, p.P99Ms)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("killed %s: suspected after %.1f ms, out of rotation after %.1f ms\n",
		res.KilledHost, res.SuspectMs, res.RebalanceMs)
	// The claims under test: the kill is detected, the balancer reacts,
	// and no client call fails at any point of the run.
	if res.SuspectMs < 0 {
		return fmt.Errorf("service: killed host never suspected")
	}
	if res.RebalanceMs < 0 {
		return fmt.Errorf("service: killed replica never left the rotation")
	}
	if res.Failures != 0 {
		return fmt.Errorf("service: %d of %d calls failed; want zero", res.Failures, res.Calls)
	}
	if *svcOut != "" {
		if err := bench.WriteServiceArtifact(*svcOut, res, *quick); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d calls)\n", *svcOut, res.Calls)
	}
	return nil
}

func runPaths() error {
	fmt.Println("== path ablations: RTT of the optional stack layers (ping-pong, loopback TCP) ==")
	iters := 500
	if *quick {
		iters = 200
	}
	w := tab()
	fmt.Fprintln(w, "path\tmsg size\tRTT µs")
	for _, path := range []string{"direct", "encrypted", "gateway"} {
		for _, size := range []int{64, 4096} {
			pt, err := bench.MeasurePath(path, size, iters)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s\t%d\t%.1f\n", pt.Path, pt.MsgSize, pt.RTTMicros)
		}
	}
	return w.Flush()
}

func runRUDPLoss() error {
	fmt.Printf("== selective-resend UDP goodput vs frame loss (%s) ==\n", netsim.Ethernet100.Name)
	losses := []float64{0, 0.01, 0.02, 0.05, 0.10, 0.20}
	msgs := 600
	if *quick {
		losses, msgs = []float64{0, 0.05, 0.20}, 300
	}
	w := tab()
	fmt.Fprintln(w, "loss\tgoodput MB/s")
	for i, l := range losses {
		pt, err := bench.MeasureRUDPLoss(l, 4096, msgs, uint64(900+i))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.0f%%\t%.2f\n", l*100, pt.MBps)
	}
	return w.Flush()
}
