// Command snipe-daemon runs one host's SNIPE daemon (paper §3.3),
// registering the host and its interfaces in the RC metadata servers
// and serving spawn/signal/status/migrate requests.
//
// A few demonstration programs are preregistered (echo, worker); real
// deployments link their own task functions into a daemon binary, the
// substitution DESIGN.md documents for fork/exec.
//
// Usage:
//
//	snipe-daemon -host h1 -rc 127.0.0.1:7001,127.0.0.1:7002 -secret s3cret
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"snipe/internal/daemon"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/task"
)

func main() {
	log.SetPrefix("snipe-daemon: ")
	log.SetFlags(0)
	host := flag.String("host", "h1", "host name (distinguished URL becomes snipe://hosts/<name>)")
	arch := flag.String("arch", "go-sim", "architecture identifier")
	cpus := flag.Int("cpus", 2, "CPU count to advertise")
	memMB := flag.Int("mem", 1024, "memory (MB) to advertise")
	rc := flag.String("rc", "127.0.0.1:7001", "comma-separated RC server addresses")
	secret := flag.String("secret", "", "RC shared secret")
	listen := flag.String("listen", "127.0.0.1:0", "task/daemon listen address pattern")
	flag.Parse()

	client := rcds.NewClient(strings.Split(*rc, ","), secretBytes(*secret), rcds.WithReadCache())
	defer client.Close()
	cat := naming.ClientCatalog(client)
	pingCtx, cancelPing := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelPing()
	if _, err := client.Ping(pingCtx); err != nil {
		log.Fatalf("RC servers unreachable: %v", err)
	}

	reg := task.NewRegistry()
	registerDemoPrograms(reg)

	d := daemon.New(daemon.Config{
		HostName: *host,
		Arch:     *arch,
		CPUs:     *cpus,
		MemoryMB: *memMB,
		Catalog:  cat,
		Registry: reg,
		Listens:  []daemon.ListenSpec{{Transport: "tcp", Addr: *listen}},
	})
	if err := d.Start(); err != nil {
		log.Fatal(err)
	}
	log.Printf("host %s up: daemon %s, programs %v", d.HostURL(), d.URN(), reg.Names())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Printf("shutting down")
	d.Close()
}

func secretBytes(s string) []byte {
	if s == "" {
		return nil
	}
	return []byte(s)
}

// registerDemoPrograms installs the programs shipped with the daemon.
func registerDemoPrograms(reg *task.Registry) {
	// echo: replies to every message with the same tag and payload.
	reg.Register("echo", func(ctx *task.Context) error {
		for {
			m, err := ctx.Recv(time.Second)
			if err != nil {
				select {
				case <-ctx.Done():
					return task.ErrKilled
				default:
					continue
				}
			}
			if err := ctx.Send(m.Src, m.Tag, m.Payload); err != nil {
				return err
			}
		}
	})
	// worker: sums the integers in its arguments and reports the total
	// to the URN given as the first argument.
	reg.Register("worker", func(ctx *task.Context) error {
		args := ctx.Args()
		if len(args) < 1 {
			return nil
		}
		var sum int64
		for _, a := range args[1:] {
			n, err := strconv.ParseInt(a, 10, 64)
			if err != nil {
				return err
			}
			sum += n
		}
		payload := make([]byte, 8)
		for i := 0; i < 8; i++ {
			payload[i] = byte(uint64(sum) >> uint(56-8*i))
		}
		return ctx.Send(args[0], 1, payload)
	})
}
