// Command snipe-demo runs an end-to-end SNIPE universe in one process
// and walks through the paper's headline capabilities: global naming,
// spawning via redundant resource managers, messaging, reliable
// multicast, file replication, and live process migration with no
// message loss.
package main

import (
	"fmt"
	"log"
	"time"

	"snipe/internal/core"
	"snipe/internal/fileserv"
	"snipe/internal/task"
)

func main() {
	log.SetPrefix("snipe-demo: ")
	log.SetFlags(0)

	reg := task.NewRegistry()
	reg.Register("echo", func(ctx *task.Context) error {
		for {
			select {
			case <-ctx.CheckpointRequested():
				ctx.SaveCheckpoint([]byte{1})
				return task.ErrMigrated
			case <-ctx.Done():
				return task.ErrKilled
			default:
			}
			m, err := ctx.Recv(20 * time.Millisecond)
			if err != nil {
				continue
			}
			if err := ctx.Send(m.Src, m.Tag, m.Payload); err != nil {
				return err
			}
		}
	})

	u, err := core.New(core.Config{
		RCServers: 3,
		Hosts: []core.HostConfig{
			{Name: "h1", CPUs: 2, MemoryMB: 1024},
			{Name: "h2", CPUs: 2, MemoryMB: 1024},
			{Name: "h3", CPUs: 4, MemoryMB: 4096},
		},
		ResourceManagers:  2,
		FileServers:       2,
		McastRedundancy:   2,
		Registry:          reg,
		ReplicationPolicy: fileserv.ReplicationPolicy{MinReplicas: 2, Interval: 200 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer u.Close()
	fmt.Printf("universe up: 3 RC replicas (%v), 3 hosts, 2 RMs, 2 file servers\n", u.RCServerAddrs())

	client, err := u.NewClient("demo")
	if err != nil {
		log.Fatal(err)
	}

	// 1. Spawn via the resource-manager service.
	urn, err := client.Spawn(task.Spec{Program: "echo"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spawned globally named process: %s\n", urn)

	// 2. Message it.
	if err := client.Send(urn, 1, []byte("hello, metacomputer")); err != nil {
		log.Fatal(err)
	}
	m, err := client.RecvMatch(urn, 1, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("echo reply: %q\n", m.Payload)

	// 3. Reliable multicast.
	group, err := u.CreateGroup("demo-group")
	if err != nil {
		log.Fatal(err)
	}
	sub, err := u.NewClient("subscriber")
	if err != nil {
		log.Fatal(err)
	}
	pubM, err := client.JoinGroup(group)
	if err != nil {
		log.Fatal(err)
	}
	subM, err := sub.JoinGroup(group)
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if err := pubM.Send(2, []byte("to the group")); err != nil {
		log.Fatal(err)
	}
	if _, _, data, err := subM.Recv(10 * time.Second); err == nil {
		fmt.Printf("multicast delivered: %q\n", data)
	} else {
		log.Fatal(err)
	}

	// 4. Replicated files.
	if _, err := client.StoreFile("", "demo.dat", []byte("replicate me")); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := 0
		for _, fs := range u.FileServers() {
			if _, ok := fs.Get("demo.dat"); ok {
				n++
			}
		}
		if n >= 2 {
			fmt.Printf("file replicated to %d servers\n", n)
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("replication never completed")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// 5. Live migration under traffic.
	host, _, _ := client.LookupFirst(urn, "host")
	fmt.Printf("process lives on %s; migrating to h3 while messaging it...\n", host)
	done := make(chan int, 1)
	go func() {
		delivered := 0
		for i := 0; i < 20; i++ {
			client.Send(urn, 3, []byte{byte(i)})
			time.Sleep(5 * time.Millisecond)
		}
		for {
			if _, err := client.RecvMatch(urn, 3, 2*time.Second); err != nil {
				break
			}
			delivered++
		}
		done <- delivered
	}()
	time.Sleep(25 * time.Millisecond)
	downtime, err := client.Migrate(urn, "h3")
	if err != nil {
		log.Fatal(err)
	}
	delivered := <-done
	newHost, _, _ := client.LookupFirst(urn, "host")
	fmt.Printf("migrated to %s in %v; %d/20 in-flight messages delivered (zero loss)\n",
		newHost, downtime, delivered)

	// 6. Kill one RC replica and keep working.
	u.RCServers()[0].Close()
	urn2, err := client.Spawn(task.Spec{Program: "echo"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after an RC replica failure, spawned %s — availability through replication\n", urn2)
	fmt.Println("demo complete")
}
