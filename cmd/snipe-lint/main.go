// Command snipe-lint runs the SNIPE-specific static-analysis suite
// (ctxfirst, lockedio, xdrbound, statskey, lockorder, ctxleak,
// goroutinelife, taguniq) over the packages matching its arguments
// (default ./...). With -tests, in-package _test.go files are loaded
// too, so goroutinelife covers goroutines spawned by test helpers.
//
// Exit status: 0 with no findings, 1 with findings, 2 on load or
// internal errors. Suppress a finding with a mandatory-reason comment:
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line above it.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"

	"snipe/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "directory to resolve package patterns in")
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: snipe-lint [-C dir] [-tests] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	load := lint.Load
	if *tests {
		load = lint.LoadWithTests
	}
	pkgs, err := load(fset, *dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "snipe-lint:", err)
		os.Exit(2)
	}
	suite := lint.NewSuite(fset, lint.Analyzers())
	for _, p := range pkgs {
		if err := suite.Run(p); err != nil {
			fmt.Fprintln(os.Stderr, "snipe-lint:", err)
			os.Exit(2)
		}
	}
	if err := suite.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, "snipe-lint:", err)
		os.Exit(2)
	}
	for _, d := range suite.Diags {
		fmt.Println(d)
	}
	if len(suite.Diags) > 0 {
		fmt.Fprintf(os.Stderr, "snipe-lint: %d finding(s)\n", len(suite.Diags))
		os.Exit(1)
	}
}
