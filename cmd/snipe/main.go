// Command snipe is the command-line client for a running SNIPE
// deployment: spawn and control tasks, inspect metadata, move files.
//
// Usage:
//
//	snipe -rc 127.0.0.1:7001 spawn <program> [args...]
//	snipe -rc ... spawn-on <host> <program> [args...]
//	snipe -rc ... status <host>
//	snipe -rc ... signal <taskURN> kill|suspend|resume
//	snipe -rc ... migrate <taskURN> <dstHost>
//	snipe -rc ... meta get <uri> [attr]
//	snipe -rc ... meta set <uri> <attr> <value>
//	snipe -rc ... store <serverURN> <name> <localFile>
//	snipe -rc ... fetch <name> [localFile]
//	snipe -rc ... hosts
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"snipe/internal/comm"
	"snipe/internal/daemon"
	"snipe/internal/fileserv"
	"snipe/internal/liveness"
	"snipe/internal/naming"
	"snipe/internal/rcds"
	"snipe/internal/rm"
	"snipe/internal/task"
)

var reqIDs atomic.Uint64

type cli struct {
	cat naming.Catalog
	ep  *comm.Endpoint
}

func main() {
	log.SetPrefix("snipe: ")
	log.SetFlags(0)
	rc := flag.String("rc", "127.0.0.1:7001", "comma-separated RC server addresses")
	secret := flag.String("secret", "", "RC shared secret")
	timeout := flag.Duration("timeout", 10*time.Second, "operation timeout")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("missing subcommand; see -h")
	}

	var sec []byte
	if *secret != "" {
		sec = []byte(*secret)
	}
	client := rcds.NewClient(strings.Split(*rc, ","), sec)
	defer client.Close()
	cat := naming.ClientCatalog(client)
	pingCtx, cancelPing := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelPing()
	if _, err := client.Ping(pingCtx); err != nil {
		log.Fatalf("RC servers unreachable: %v", err)
	}

	// A transient client process with its own URN.
	urn := naming.ProcessURN("cli", fmt.Sprintf("snipe-%d", os.Getpid()))
	ep := comm.NewEndpoint(urn, comm.WithResolver(naming.NewResolver(cat)))
	defer ep.Close()
	route, err := ep.Listen(comm.ListenSpec{Transport: "tcp", Addr: "127.0.0.1:0"})
	if err != nil {
		log.Fatal(err)
	}
	naming.Register(cat, urn, []comm.Route{route})
	defer naming.Unregister(cat, urn)

	c := &cli{cat: cat, ep: ep}
	if err := c.run(args, *timeout); err != nil {
		log.Fatal(err)
	}
}

func (c *cli) run(args []string, timeout time.Duration) error {
	switch args[0] {
	case "spawn":
		if len(args) < 2 {
			return fmt.Errorf("spawn needs a program name")
		}
		rmc := rm.NewClient(c.cat, c.ep)
		rmc.SetTimeout(timeout)
		urn, err := rmc.Allocate(task.Spec{Program: args[1], Args: args[2:]})
		if err != nil {
			return err
		}
		fmt.Println(urn)
		return nil

	case "spawn-on":
		if len(args) < 3 {
			return fmt.Errorf("spawn-on needs a host and a program")
		}
		durn, err := c.daemonOfHost(naming.HostURL(args[1]))
		if err != nil {
			return err
		}
		urn, err := daemon.SpawnRemote(c.ep, durn, task.Spec{Program: args[2], Args: args[3:]}, reqIDs.Add(1), timeout)
		if err != nil {
			return err
		}
		fmt.Println(urn)
		return nil

	case "status":
		if len(args) != 2 {
			return fmt.Errorf("status needs a host name")
		}
		durn, err := c.daemonOfHost(naming.HostURL(args[1]))
		if err != nil {
			return err
		}
		tasks, err := daemon.StatusRemote(c.ep, durn, reqIDs.Add(1), timeout)
		if err != nil {
			return err
		}
		urns := make([]string, 0, len(tasks))
		for u := range tasks {
			urns = append(urns, u)
		}
		sort.Strings(urns)
		for _, u := range urns {
			fmt.Printf("%-60s %s\n", u, tasks[u])
		}
		return nil

	case "signal":
		if len(args) != 3 {
			return fmt.Errorf("signal needs a task URN and a signal name")
		}
		sig, ok := map[string]task.Signal{
			"kill": task.SigKill, "suspend": task.SigSuspend, "resume": task.SigResume,
		}[args[2]]
		if !ok {
			return fmt.Errorf("unknown signal %q", args[2])
		}
		durn, err := c.daemonOfTask(args[1])
		if err != nil {
			return err
		}
		return daemon.SignalRemote(c.ep, durn, args[1], sig)

	case "migrate":
		if len(args) != 3 {
			return fmt.Errorf("migrate needs a task URN and a destination host")
		}
		return c.migrate(args[1], args[2], timeout)

	case "meta":
		return c.meta(args[1:])

	case "store":
		if len(args) != 4 {
			return fmt.Errorf("store needs <serverURN> <name> <localFile>")
		}
		data, err := os.ReadFile(args[3])
		if err != nil {
			return err
		}
		fc := fileserv.NewClient(c.cat, c.ep)
		fc.SetTimeout(timeout)
		return fc.Store(args[1], args[2], data)

	case "fetch":
		if len(args) < 2 {
			return fmt.Errorf("fetch needs a file name")
		}
		fc := fileserv.NewClient(c.cat, c.ep)
		fc.SetTimeout(timeout)
		data, err := fc.FetchAny(args[1], nil)
		if err != nil {
			return err
		}
		if len(args) >= 3 {
			return os.WriteFile(args[2], data, 0o644)
		}
		os.Stdout.Write(data)
		return nil

	case "hosts":
		hosts, err := c.cat.URIs(naming.HostPrefix)
		if err != nil {
			return err
		}
		for _, h := range hosts {
			arch, _, _ := c.cat.FirstValue(h, rcds.AttrArch)
			loadStr := "?"
			if load, ok := liveness.HostLoad(c.cat, h); ok {
				loadStr = fmt.Sprintf("%.2f", load)
			}
			fmt.Printf("%-40s arch=%-12s load=%s\n", h, arch, loadStr)
		}
		return nil
	}
	return fmt.Errorf("unknown subcommand %q", args[0])
}

func (c *cli) meta(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("meta get|set|add ...")
	}
	switch args[0] {
	case "get":
		uri := args[1]
		if len(args) >= 3 {
			vals, err := c.cat.Values(uri, args[2])
			if err != nil {
				return err
			}
			for _, v := range vals {
				fmt.Println(v)
			}
			return nil
		}
		return fmt.Errorf("meta get needs <uri> <attr> (the catalog protocol is attribute-oriented)")
	case "set":
		if len(args) != 4 {
			return fmt.Errorf("meta set <uri> <attr> <value>")
		}
		return c.cat.Set(args[1], args[2], args[3])
	case "add":
		if len(args) != 4 {
			return fmt.Errorf("meta add <uri> <attr> <value>")
		}
		return c.cat.Add(args[1], args[2], args[3])
	}
	return fmt.Errorf("unknown meta op %q", args[0])
}

func (c *cli) daemonOfHost(hostURL string) (string, error) {
	durn, ok, err := c.cat.FirstValue(hostURL, rcds.AttrHostDaemonURL)
	if err != nil || !ok {
		return "", fmt.Errorf("host %s has no daemon (err=%v)", hostURL, err)
	}
	return durn, nil
}

func (c *cli) daemonOfTask(taskURN string) (string, error) {
	host, ok, err := c.cat.FirstValue(taskURN, "host")
	if err != nil || !ok {
		return "", fmt.Errorf("task %s has no host metadata (err=%v)", taskURN, err)
	}
	return c.daemonOfHost(host)
}

func (c *cli) migrate(taskURN, dstHost string, timeout time.Duration) error {
	srcDaemon, err := c.daemonOfTask(taskURN)
	if err != nil {
		return err
	}
	dstDaemon, err := c.daemonOfHost(naming.HostURL(dstHost))
	if err != nil {
		return err
	}
	// Reuse the migration orchestrator over the CLI's endpoint.
	dt, err := migrateRemote(c.cat, c.ep, taskURN, srcDaemon, dstDaemon, timeout)
	if err != nil {
		return err
	}
	fmt.Printf("migrated in %v\n", dt)
	return nil
}
