package main

import (
	"time"

	"snipe/internal/comm"
	"snipe/internal/migrate"
	"snipe/internal/naming"
)

// migrateRemote adapts the migration orchestrator to the CLI.
func migrateRemote(cat naming.Catalog, ep *comm.Endpoint, taskURN, srcDaemon, dstDaemon string, timeout time.Duration) (time.Duration, error) {
	return migrate.Remote(cat, ep, taskURN, srcDaemon, dstDaemon,
		migrate.Options{CheckpointTimeout: timeout})
}
