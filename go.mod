module snipe

go 1.22
