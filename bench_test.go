// Package snipe's root benchmark suite regenerates the paper's
// evaluation artifacts (see DESIGN.md experiment index and
// EXPERIMENTS.md for paper-vs-measured numbers):
//
//	BenchmarkFig1/*          — Fig. 1 bandwidth curves per medium/transport
//	BenchmarkMultipath/*     — §5.3 striped aggregate vs best single medium
//	BenchmarkMPIConnect,
//	BenchmarkPVMPI           — §6.1 inter-MPP point-to-point comparison (E2)
//	BenchmarkAvailability/*  — metadata availability under failures (E3)
//	BenchmarkMulticast/*     — >½-router delivery invariant (E4)
//	BenchmarkMigration/*     — zero-loss migration and its ablation (E5)
//	BenchmarkScalability/*   — host join cost, RM redundancy (E6)
//	BenchmarkFailover        — route failover completeness (E7)
//	BenchmarkLiveness/*      — failure-detection latency (kill/partition/clean)
//	BenchmarkRUDPLoss/*      — selective-resend goodput vs loss
//
// Domain results are attached with b.ReportMetric; run with
//
//	go test -bench=. -benchmem -benchtime=1x
package snipe

import (
	"fmt"
	"testing"
	"time"

	"snipe/internal/bench"
	"snipe/internal/netsim"
)

// fig1BenchSizes is a reduced sweep for the testing.B harness; the
// full sweep runs in cmd/snipe-bench.
var fig1BenchSizes = []int{1024, 16384, 262144}

func BenchmarkFig1(b *testing.B) {
	var seed uint64 = 100
	for _, medium := range bench.Fig1Media {
		for _, transport := range []string{"raw", "snipe-tcp", "snipe-rudp"} {
			for _, size := range fig1BenchSizes {
				name := fmt.Sprintf("%s/%s/%dB", medium.Name, transport, size)
				medium, transport, size := medium, transport, size
				b.Run(name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						seed++
						pt, err := bench.MeasureFig1(medium, transport, size, seed)
						if err != nil {
							b.Fatal(err)
						}
						b.ReportMetric(pt.MBps, "MB/s")
					}
				})
			}
		}
	}
}

func BenchmarkMultipath(b *testing.B) {
	var seed uint64 = 9000
	for _, size := range []int{1048576, 4194304} {
		size := size
		b.Run(fmt.Sprintf("%s+%s/%dB", bench.MultipathMedia[0].Name, bench.MultipathMedia[1].Name, size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seed += 20
				pt, _, err := bench.MeasureMultipath(bench.MultipathMedia, size, seed)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pt.MBps, "MB/s")
				b.ReportMetric(pt.Speedup, "x-vs-best-single")
			}
		})
	}
}

func BenchmarkMPIConnect(b *testing.B) {
	for _, size := range []int{64, 4096, 65536} {
		size := size
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pt, err := bench.MeasureE2("mpiconnect", size, 200)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pt.RTTMicros, "rtt-µs")
				b.ReportMetric(pt.MBps, "MB/s")
			}
		})
	}
}

func BenchmarkPVMPI(b *testing.B) {
	for _, size := range []int{64, 4096, 65536} {
		size := size
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pt, err := bench.MeasureE2("pvmpi", size, 200)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pt.RTTMicros, "rtt-µs")
				b.ReportMetric(pt.MBps, "MB/s")
			}
		})
	}
}

func BenchmarkAvailability(b *testing.B) {
	b.Run("snipe-3-replicas", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := bench.MeasureAvailabilitySNIPE(3, 300, 0.3)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.Availability*100, "%avail")
		}
	})
	b.Run("pvm-master", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := bench.MeasureAvailabilityPVM(3, 100, 0.3)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.Availability*100, "%avail")
		}
	})
}

func BenchmarkMulticast(b *testing.B) {
	cases := []struct {
		name             string
		routers, failed  int
		members, msgs    int
		expectRateAtMost float64
	}{
		{"3-routers-0-failed", 3, 0, 6, 20, 0},
		{"3-routers-1-failed", 3, 1, 6, 20, 0},
		{"5-routers-2-failed", 5, 2, 6, 20, 0},
		{"ablation-1-router-1-failed", 1, 1, 4, 10, 0},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := bench.MeasureMulticast(c.routers, c.failed, c.members, c.msgs)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(r.DeliveryRate*100, "%delivered")
			}
		})
	}
}

func BenchmarkMigration(b *testing.B) {
	b.Run("buffered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := bench.MeasureMigration(true, 40)
			if err != nil {
				b.Fatal(err)
			}
			if r.Delivered != r.Sent {
				b.Fatalf("zero-loss violated: %d/%d", r.Delivered, r.Sent)
			}
			b.ReportMetric(float64(r.Downtime.Microseconds()), "downtime-µs")
			b.ReportMetric(100*float64(r.Delivered)/float64(r.Sent), "%delivered")
		}
	})
	b.Run("ablation-unbuffered", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := bench.MeasureMigration(false, 40)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(100*float64(r.Delivered)/float64(r.Sent), "%delivered")
		}
	})
}

func BenchmarkScalability(b *testing.B) {
	b.Run("snipe-host-join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pts, err := bench.MeasureHostJoinSNIPE(24, []int{24})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(pts[0].Micros, "join24-µs")
		}
	})
	b.Run("pvm-host-join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pts, err := bench.MeasureHostJoinPVM(24, []int{24})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(pts[0].Micros, "join24-µs")
		}
	})
	b.Run("redundant-rm-failover", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := bench.MeasureSpawnRedundantRMs(2, 3, 30, true)
			if err != nil {
				b.Fatal(err)
			}
			if r.Failures != 0 {
				b.Fatalf("redundant RMs failed %d spawns", r.Failures)
			}
			b.ReportMetric(r.SpawnsPerSec, "spawns/s")
		}
	})
}

func BenchmarkFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.MeasureFailover(true, 60)
		if err != nil {
			b.Fatal(err)
		}
		if r.Delivered != r.Sent {
			b.Fatalf("failover lost %d messages", r.Sent-r.Delivered)
		}
		b.ReportMetric(float64(r.MaxGap.Microseconds()), "switchover-µs")
	}
}

func BenchmarkLiveness(b *testing.B) {
	for _, mode := range []string{"crash", "partition", "clean"} {
		mode := mode
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pt, _, err := bench.MeasureDetection(mode, 25*time.Millisecond)
				if err != nil {
					b.Fatal(err)
				}
				if mode != "clean" && pt.DeadMs < 0 {
					b.Fatal("victim never declared dead")
				}
				if pt.FalseSuspects > 0 {
					b.Fatalf("%d false suspicion(s)", pt.FalseSuspects)
				}
				if pt.DeadMs >= 0 {
					b.ReportMetric(pt.DeadMs, "detect-ms")
				}
				if pt.PlacementMs >= 0 {
					b.ReportMetric(pt.PlacementMs, "placement-ms")
				}
			}
		})
	}
}

func BenchmarkPathAblations(b *testing.B) {
	for _, path := range []string{"direct", "encrypted", "gateway"} {
		path := path
		b.Run(path, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pt, err := bench.MeasurePath(path, 1024, 300)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pt.RTTMicros, "rtt-µs")
			}
		})
	}
}

func BenchmarkRUDPLoss(b *testing.B) {
	var seed uint64 = 500
	for _, loss := range []float64{0, 0.01, 0.05, 0.10} {
		loss := loss
		b.Run(fmt.Sprintf("loss-%.0f%%", loss*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seed++
				pt, err := bench.MeasureRUDPLoss(loss, 4096, 400, seed)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pt.MBps, "MB/s")
			}
		})
	}
}

// Sanity: the media profiles used above stay calibrated.
func TestMediaProfiles(t *testing.T) {
	if netsim.Ethernet100.BytesPerSec() != 12.5e6 {
		t.Fatalf("Ethernet100 rate: %v", netsim.Ethernet100.BytesPerSec())
	}
	if netsim.ATM155.BytesPerSec() >= 155e6/8 {
		t.Fatal("ATM155 should pay the cell tax")
	}
}
