package snipe

// Standalone-deployment integration test: builds the cmd/ binaries and
// drives a small metacomputer of separate OS processes — two RC
// replicas, a host daemon, a resource manager — through the snipe CLI,
// exactly as the README's deployment section describes.

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freePort reserves a loopback port.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// buildBinaries compiles the commands under test into dir.
func buildBinaries(t *testing.T, dir string, names ...string) map[string]string {
	t.Helper()
	out := make(map[string]string, len(names))
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
		out[name] = bin
	}
	return out
}

// startProc launches a long-running server binary and arranges its
// shutdown.
func startProc(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", bin, err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGINT)
		done := make(chan struct{})
		go func() {
			cmd.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	})
	return cmd
}

// runCLI executes a one-shot CLI invocation.
func runCLI(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestStandaloneDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries; skipped in -short mode")
	}
	dir := t.TempDir()
	bins := buildBinaries(t, dir, "snipe-rcserver", "snipe-daemon", "snipe-rm",
		"snipe-fileserver", "snipe-console", "snipe")

	rc1, rc2 := freePort(t), freePort(t)
	rcList := rc1 + "," + rc2
	snap := filepath.Join(dir, "rc1.snap")

	startProc(t, bins["snipe-rcserver"], "-addr", rc1, "-origin", "rc1",
		"-peers", rc2, "-anti-entropy", "100ms", "-data", snap)
	startProc(t, bins["snipe-rcserver"], "-addr", rc2, "-origin", "rc2",
		"-peers", rc1, "-anti-entropy", "100ms")

	// Wait for the replicas to answer.
	waitFor(t, 10*time.Second, func() error {
		_, err := runCLI(t, bins["snipe"], "-rc", rcList, "meta", "set", "urn:it:probe", "up", "1")
		return err
	})

	startProc(t, bins["snipe-daemon"], "-host", "it1", "-rc", rcList)
	startProc(t, bins["snipe-rm"], "-name", "itrm", "-rc", rcList)

	// The host appears in the catalog.
	waitFor(t, 10*time.Second, func() error {
		out, err := runCLI(t, bins["snipe"], "-rc", rcList, "hosts")
		if err != nil {
			return err
		}
		if !strings.Contains(out, "snipe://hosts/it1") {
			return fmt.Errorf("host missing: %q", out)
		}
		return nil
	})

	// Spawn via the RM service; the daemon ships an echo program.
	var taskURN string
	waitFor(t, 15*time.Second, func() error {
		out, err := runCLI(t, bins["snipe"], "-rc", rcList, "spawn", "echo")
		if err != nil {
			return fmt.Errorf("%v: %s", err, out)
		}
		taskURN = strings.TrimSpace(out)
		return nil
	})
	if !strings.HasPrefix(taskURN, "urn:snipe:process:it1:echo-") {
		t.Fatalf("spawned URN: %q", taskURN)
	}

	// The daemon's status protocol sees it running.
	out, err := runCLI(t, bins["snipe"], "-rc", rcList, "status", "it1")
	if err != nil || !strings.Contains(out, taskURN) || !strings.Contains(out, "running") {
		t.Fatalf("status: %v %q", err, out)
	}

	// Kill it through the CLI and watch the state change in metadata.
	if out, err := runCLI(t, bins["snipe"], "-rc", rcList, "signal", taskURN, "kill"); err != nil {
		t.Fatalf("signal: %v %q", err, out)
	}
	waitFor(t, 10*time.Second, func() error {
		out, err := runCLI(t, bins["snipe"], "-rc", rcList, "meta", "get", taskURN, "state")
		if err != nil {
			return err
		}
		if !strings.Contains(out, "exited") {
			return fmt.Errorf("state: %q", out)
		}
		return nil
	})

	// Metadata written through one replica is readable at the other
	// (kill order is irrelevant; both are in the client's list).
	if out, err := runCLI(t, bins["snipe"], "-rc", rc2, "meta", "get", "urn:it:probe", "up"); err != nil || !strings.Contains(out, "1") {
		t.Fatalf("replicated read: %v %q", err, out)
	}

	// File server: store a file through the CLI and fetch it back.
	startProc(t, bins["snipe-fileserver"], "-name", "itfs", "-rc", rcList)
	var fsURN string
	waitFor(t, 10*time.Second, func() error {
		out, err := runCLI(t, bins["snipe"], "-rc", rcList, "meta", "get",
			"urn:snipe:service:fileserver", "location")
		if err != nil || !strings.Contains(out, "fileserver") {
			return fmt.Errorf("fileserver not registered: %v %q", err, out)
		}
		fsURN = strings.TrimSpace(strings.Split(out, "\n")[0])
		return nil
	})
	local := filepath.Join(dir, "payload.txt")
	if err := os.WriteFile(local, []byte("standalone file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := runCLI(t, bins["snipe"], "-rc", rcList, "store", fsURN, "it.txt", local); err != nil {
		t.Fatalf("store: %v %q", err, out)
	}
	out, err = runCLI(t, bins["snipe"], "-rc", rcList, "fetch", "it.txt")
	if err != nil || out != "standalone file" {
		t.Fatalf("fetch: %v %q", err, out)
	}

	// Console: the HTTP gateway renders hosts and resolves URIs.
	conAddr := freePort(t)
	startProc(t, bins["snipe-console"], "-rc", rcList, "-http", conAddr)
	waitFor(t, 10*time.Second, func() error {
		resp, err := httpGet("http://" + conAddr + "/hosts")
		if err != nil {
			return err
		}
		if !strings.Contains(resp, "snipe://hosts/it1") {
			return fmt.Errorf("console hosts page: %q", resp)
		}
		return nil
	})
	resp, err := httpGet("http://" + conAddr + "/resolve?uri=" + taskURN)
	if err != nil || !strings.Contains(resp, "exited") {
		t.Fatalf("console resolve: %v %q", err, resp)
	}
}

// httpGet fetches a URL body as a string.
func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != 200 {
		return string(b), fmt.Errorf("status %d", resp.StatusCode)
	}
	return string(b), nil
}

func waitFor(t *testing.T, timeout time.Duration, f func() error) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		if last = f(); last == nil {
			return
		}
		time.Sleep(200 * time.Millisecond)
	}
	t.Fatalf("condition never met: %v", last)
}
