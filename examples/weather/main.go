// Weather: the paper's motivating scenario of "monitoring of weather
// and prediction of catastrophic conditions" — distributed data
// collection over reliable multicast, a forecaster aggregating the
// feed, and continued operation while a multicast router fails.
//
// Act two exercises the service layer: the forecast is published as a
// replicated service group ("forecast", three replicas), a swarm of
// consumers queries it over streaming RPC, and one replica is killed
// mid-swarm — every query still answers, because the group's client
// retries on the surviving replicas.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"time"

	"snipe/internal/comm"
	"snipe/internal/core"
	"snipe/internal/mcast"
	"snipe/internal/service"
	"snipe/internal/task"
	"snipe/internal/xdr"
)

const (
	tagReading  = 1
	tagForecast = 2
	nStations   = 4
	nRounds     = 5
)

func main() {
	log.SetFlags(0)

	reg := task.NewRegistry()
	// A sensor station multicasts one pressure reading per round to the
	// observation group named in its arguments.
	reg.Register("station", func(ctx *task.Context) error {
		group := ctx.Args()[0]
		stationID := ctx.Args()[1]
		member, err := joinGroupFromTask(ctx, group)
		if err != nil {
			return err
		}
		base := int64(1000 + len(stationID)) // deterministic pseudo-reading
		for round := 0; round < nRounds; round++ {
			reading := base - int64(round) // falling pressure: a storm
			// Readings travel in the architecture-independent typed
			// format (the client library's PVM-style pack/unpack, §3.4).
			p := xdr.NewPacker(32)
			p.PackString(stationID)
			p.PackInt32(int32(round))
			p.PackInt64(reading)
			if err := member.Send(tagReading, p.Bytes()); err != nil {
				return err
			}
			time.Sleep(20 * time.Millisecond)
		}
		return nil
	})

	u, err := core.New(core.Config{
		Hosts: []core.HostConfig{
			{Name: "field-1", CPUs: 1, MemoryMB: 128},
			{Name: "field-2", CPUs: 1, MemoryMB: 128},
			{Name: "field-3", CPUs: 1, MemoryMB: 128},
			{Name: "center", CPUs: 8, MemoryMB: 4096},
		},
		McastRedundancy: 3,
		Registry:        reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer u.Close()

	group, err := u.CreateGroup("observations")
	if err != nil {
		log.Fatal(err)
	}

	// The forecaster is a console-side client subscribed to the feed.
	forecaster, err := u.NewClient("forecaster")
	if err != nil {
		log.Fatal(err)
	}
	feed, err := forecaster.JoinGroup(group)
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	// Deploy one station per field host.
	for i := 0; i < nStations; i++ {
		host := fmt.Sprintf("field-%d", i%3+1)
		if _, err := forecaster.SpawnOn(host, task.Spec{
			Program: "station",
			Args:    []string{group, fmt.Sprintf("st%0*d", i+1, i+1)},
		}); err != nil {
			log.Fatal(err)
		}
	}

	// Mid-campaign, a router host fails: a minority of the 3 routers.
	// The >1/2 registration discipline keeps every reading flowing.
	go func() {
		time.Sleep(40 * time.Millisecond)
		if r, ok := u.Router("field-1"); ok {
			r.Close()
			fmt.Println("!! multicast router on field-1 crashed; collection continues")
		}
	}()

	total := nStations * nRounds
	sum, count := int64(0), 0
	minReading := int64(1 << 62)
	var minStation string
	for count < total {
		_, tag, data, err := feed.Recv(10 * time.Second)
		if err != nil {
			log.Fatalf("lost the feed after %d/%d readings: %v", count, total, err)
		}
		if tag != tagReading {
			continue
		}
		u := xdr.NewUnpacker(data)
		station, err := u.String()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := u.Int32(); err != nil { // round number
			log.Fatal(err)
		}
		reading, err := u.Int64()
		if err != nil {
			log.Fatal(err)
		}
		sum += reading
		count++
		if reading < minReading {
			minReading, minStation = reading, station
		}
	}
	fmt.Printf("collected %d/%d readings; mean pressure %.1f, minimum %d at %s\n",
		count, total, float64(sum)/float64(count), minReading, minStation)
	if minReading < 1001 {
		fmt.Println("forecast: severe storm — issuing warning")
	}
	_ = tagForecast

	// --- act two: the forecast as a replicated service group ---------
	forecast := fmt.Sprintf("storm warning: mean pressure %.1f, minimum %d at %s",
		float64(sum)/float64(count), minReading, minStation)

	var replicas []*service.Server
	for i := 1; i <= 3; i++ {
		rep, err := u.NewClient(fmt.Sprintf("forecast-r%d", i))
		if err != nil {
			log.Fatal(err)
		}
		defer rep.Close()
		srv, err := service.NewServer(service.ServerConfig{
			Name:     "forecast",
			Catalog:  u.Catalog(),
			Endpoint: rep.Endpoint(),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		srv.Handle("current", func(ctx context.Context, st *comm.Stream) error {
			for { // drain the (empty) request side
				if _, err := st.Read(ctx); err == io.EOF {
					break
				} else if err != nil {
					return err
				}
			}
			return st.Write(ctx, []byte(forecast))
		})
		replicas = append(replicas, srv)
	}

	consumer, err := u.NewClient("consumer")
	if err != nil {
		log.Fatal(err)
	}
	defer consumer.Close()
	cli, err := service.NewClient(service.ClientConfig{
		Service:        "forecast",
		Catalog:        u.Catalog(),
		Endpoint:       consumer.Endpoint(),
		AttemptTimeout: time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	const queries = 30
	failures := 0
	for q := 0; q < queries; q++ {
		if q == queries/3 {
			// Mid-swarm, one replica drains out gracefully...
			if err := replicas[0].Drain(context.Background()); err != nil {
				log.Fatal(err)
			}
			fmt.Println("!! forecast replica 1 drained; queries continue")
		}
		if q == 2*queries/3 {
			// ...and a second one is killed cold.
			replicas[1].Mux().Endpoint().Close()
			fmt.Println("!! forecast replica 2 crashed; queries continue")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		resp, err := cli.Call(ctx, "current", nil)
		cancel()
		if err != nil || string(resp) != forecast {
			failures++
			log.Printf("query %d failed: %v (%q)", q, err, resp)
		}
	}
	fmt.Printf("forecast service answered %d/%d queries across a drain and a crash\n",
		queries-failures, queries)
	if failures > 0 {
		log.Fatalf("%d forecast queries failed; the group should have absorbed both losses", failures)
	}
}

// joinGroupFromTask joins a multicast group using the task's own
// endpoint and its daemon-provided catalog access.
func joinGroupFromTask(ctx *task.Context, group string) (*mcast.Member, error) {
	return mcast.Join(ctx.Catalog(), ctx.Endpoint(), group)
}
