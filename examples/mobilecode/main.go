// Mobilecode: signed SnipeScript on playgrounds (paper §3.6, §5.8).
// A developer signs a mobile program, publishes it to a file server
// with its content hash in RC metadata, and runs it on sandboxed
// hosts. The example shows the four playground guarantees: verified
// authenticity and integrity, enforced access rights, enforced
// resource quotas, and checkpoint/migration of running mobile code.
package main

import (
	"crypto/rand"
	"fmt"
	"log"
	"time"

	"snipe/internal/core"
	"snipe/internal/playground"
	"snipe/internal/seckey"
	"snipe/internal/task"
)

// collatz computes the total stopping-time steps of the Collatz
// sequence for its argument, reporting progress-capable state so it
// can checkpoint anywhere.
const collatzSrc = `
.mem 4
; mem[0] = n, mem[1] = steps
.str done "collatz finished"
push 0
sys argint
storei 0
loop:
loadi 0
push 1
le
jnz end
loadi 0
push 2
mod
jnz odd
loadi 0
push 2
div
storei 0
jmp step
odd:
loadi 0
push 3
mul
push 1
add
storei 0
step:
loadi 1
push 1
add
storei 1
jmp loop
end:
push $done
sys log
push 0
halt`

// countdown decrements from its argument to zero: a long-running
// computation whose VM state checkpoints and migrates mid-flight.
const countdownSrc = `
.mem 2
.str done "countdown finished"
push 0
sys argint
storei 0
loop:
loadi 0
push 0
le
jnz end
loadi 0
push 1
sub
storei 0
jmp loop
end:
push $done
sys log
push 0
halt`

// hog never terminates: the playground's instruction quota must stop
// it.
const hogSrc = `
.mem 2
spin:
jmp spin`

func main() {
	log.SetFlags(0)

	// The developer's signing identity, trusted for code signing by the
	// universe's playgrounds.
	dev, err := seckey.NewPrincipal("urn:snipe:user:dev", rand.Reader)
	if err != nil {
		log.Fatal(err)
	}
	trust := seckey.NewTrustStore()
	trust.Trust(seckey.PurposeCodeSigning, dev.Name, dev.Public())

	u, err := core.New(core.Config{
		Hosts: []core.HostConfig{
			{Name: "sandbox-1", CPUs: 2, MemoryMB: 256},
			{Name: "sandbox-2", CPUs: 2, MemoryMB: 256},
		},
		FileServers:     1,
		Trust:           trust,
		PlaygroundQuota: playground.Quota{MaxSteps: 200_000_000, MaxStack: 256, MaxMem: 1024},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer u.Close()

	client, err := u.NewClient("publisher")
	if err != nil {
		log.Fatal(err)
	}
	fsURN := u.FileServers()[0].URN()

	// Publish the programs, signed.
	sources := map[string]string{"collatz.sc": collatzSrc, "countdown.sc": countdownSrc, "hog.sc": hogSrc}
	for name, src := range sources {
		img := playground.SignImage(dev, name, playground.MustAssemble(src), playground.PermLog)
		if err := playground.Publish(u.Catalog(), client.Files(), fsURN, img); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("published signed code images: collatz.sc, countdown.sc, hog.sc")

	// 1. Run collatz(27) to completion on sandbox-1.
	urn, err := client.SpawnOn("sandbox-1", task.Spec{
		Program: playground.ProgramName, CodeURL: "collatz.sc", Args: []string{"27"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := client.WaitState(urn, task.StateExited, 30*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("collatz.sc ran to completion inside the sandbox")

	// 2. Migrate running mobile code: start a long run, move it to
	// sandbox-2 mid-flight (the VM state snapshot travels; the code is
	// re-fetched and re-verified at the destination).
	urn2, err := client.SpawnOn("sandbox-1", task.Spec{
		Program: playground.ProgramName, CodeURL: "countdown.sc", Args: []string{"10000000"},
	})
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	downtime, err := client.Migrate(urn2, "sandbox-2")
	if err != nil {
		log.Fatal(err)
	}
	if err := client.WaitState(urn2, task.StateExited, 60*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("countdown run migrated mid-computation (downtime %v) and finished on sandbox-2\n", downtime)

	// 3. Quota enforcement: the hog is stopped and the violation logged.
	urn3, err := client.SpawnOn("sandbox-1", task.Spec{
		Program: playground.ProgramName, CodeURL: "hog.sc",
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := client.WaitState(urn3, task.StateFailed, 30*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("hog.sc exceeded its instruction quota and was stopped")

	// 4. Tampered code is rejected by the integrity check.
	data, _ := u.FileServers()[0].Get("collatz.sc")
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0xFF
	u.FileServers()[0].Put("collatz.sc", bad)
	urn4, err := client.SpawnOn("sandbox-2", task.Spec{
		Program: playground.ProgramName, CodeURL: "collatz.sc", Args: []string{"5"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := client.WaitState(urn4, task.StateFailed, 30*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tampered collatz.sc failed integrity verification and was refused")

	fmt.Println("\nplayground audit log:")
	for _, line := range u.Playground().Log() {
		fmt.Println("  ", line)
	}
}
