// Quickstart: bring up a SNIPE universe, spawn a globally named task,
// exchange messages with it, and share metadata through the replicated
// resource catalogs.
package main

import (
	"fmt"
	"log"
	"time"

	"snipe/internal/core"
	"snipe/internal/task"
)

func main() {
	log.SetFlags(0)

	// Programs are Go functions registered by name — the simulation's
	// stand-in for executables on a host's path (see DESIGN.md).
	reg := task.NewRegistry()
	reg.Register("greeter", func(ctx *task.Context) error {
		m, err := ctx.Recv(30 * time.Second)
		if err != nil {
			return err
		}
		reply := fmt.Sprintf("hello %s, this is %s on %s", m.Src, ctx.URN(), ctx.Host())
		return ctx.Send(m.Src, m.Tag, []byte(reply))
	})

	// Two virtual hosts, one replicated RC server pair, one resource
	// manager (the Config zero values fill in the rest).
	u, err := core.New(core.Config{
		RCServers: 2,
		Hosts: []core.HostConfig{
			{Name: "alpha", CPUs: 2, MemoryMB: 512},
			{Name: "beta", CPUs: 2, MemoryMB: 512},
		},
		Registry: reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer u.Close()

	client, err := u.NewClient("quickstart")
	if err != nil {
		log.Fatal(err)
	}

	// Spawn via the resource-manager service; placement is by load.
	urn, err := client.Spawn(task.Spec{Program: "greeter"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("spawned:", urn)

	// Any process can message any other by URN — no virtual machine
	// membership required.
	if err := client.Send(urn, 42, []byte("ping")); err != nil {
		log.Fatal(err)
	}
	m, err := client.RecvMatch(urn, 42, 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("reply:", string(m.Payload))

	// The open metadata catalogs double as a shared blackboard.
	client.PutMeta("urn:snipe:app:quickstart", "status", "done")
	v, _, _ := client.LookupFirst("urn:snipe:app:quickstart", "status")
	fmt.Println("metadata:", v)
}
