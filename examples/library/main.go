// Library: the paper's first motivating application — "indexing and
// cataloging the worldwide digital library". Documents live on
// replicated file servers; indexer tasks spread over the hosts fetch
// their shard of documents (failing over between replicas), build
// partial term counts, and publish them as RC metadata, where a
// cataloguer merges them. Midway, a file server crashes; the run
// completes from the surviving replicas.
package main

import (
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"
	"time"

	"snipe/internal/core"
	"snipe/internal/fileserv"
	"snipe/internal/task"
)

var corpus = map[string]string{
	"doc-001": "the virtual machine is the entire internet",
	"doc-002": "replication of data and computation gives availability",
	"doc-003": "the internet routes around failures by replication",
	"doc-004": "metadata servers catalog every resource on the internet",
	"doc-005": "processes migrate and the machine keeps computing",
	"doc-006": "availability comes from replication of metadata servers",
}

const indexURI = "urn:snipe:app:library-index"

func main() {
	log.SetFlags(0)

	reg := task.NewRegistry()
	// indexer fetches its assigned documents from any replica, counts
	// terms, and publishes "term=count" assertions under a shared URI.
	reg.Register("indexer", func(ctx *task.Context) error {
		fc := fileserv.NewClient(ctx.Catalog(), ctx.Endpoint())
		counts := map[string]int{}
		for _, doc := range ctx.Args() {
			data, err := fc.FetchAny(doc, nil)
			if err != nil {
				return fmt.Errorf("fetching %s: %w", doc, err)
			}
			for _, word := range strings.Fields(string(data)) {
				counts[word]++
			}
		}
		for term, n := range counts {
			if err := ctx.Catalog().Add(indexURI, "term:"+term, fmt.Sprintf("%s=%d", ctx.URN(), n)); err != nil {
				return err
			}
		}
		return nil
	})

	u, err := core.New(core.Config{
		Hosts: []core.HostConfig{
			{Name: "idx-1", CPUs: 2, MemoryMB: 512},
			{Name: "idx-2", CPUs: 2, MemoryMB: 512},
		},
		FileServers:       3,
		ReplicationPolicy: fileserv.ReplicationPolicy{MinReplicas: 2, Interval: 50 * time.Millisecond},
		Registry:          reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer u.Close()

	client, err := u.NewClient("cataloguer")
	if err != nil {
		log.Fatal(err)
	}

	// Publish the corpus to the first file server; the replication
	// daemon spreads it to a second.
	docs := make([]string, 0, len(corpus))
	for name, text := range corpus {
		if _, err := client.StoreFile("", name, []byte(text)); err != nil {
			log.Fatal(err)
		}
		docs = append(docs, name)
	}
	sort.Strings(docs)
	fmt.Printf("published %d documents\n", len(docs))

	// Wait for every document to reach two replicas, then crash the
	// primary server: indexers must succeed from the replicas.
	deadline := time.Now().Add(10 * time.Second)
	for {
		replicated := 0
		for _, name := range docs {
			n := 0
			for _, fs := range u.FileServers() {
				if _, ok := fs.Get(name); ok {
					n++
				}
			}
			if n >= 2 {
				replicated++
			}
		}
		if replicated == len(docs) {
			break
		}
		if time.Now().After(deadline) {
			log.Fatal("replication never completed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	u.FileServers()[0].Close()
	fmt.Println("!! primary file server crashed; indexing proceeds from replicas")

	// Shard the corpus over two indexers and watch them exit.
	half := len(docs) / 2
	var urns []string
	for i, shard := range [][]string{docs[:half], docs[half:]} {
		urn, err := client.SpawnOn(fmt.Sprintf("idx-%d", i+1), task.Spec{Program: "indexer", Args: shard})
		if err != nil {
			log.Fatal(err)
		}
		urns = append(urns, urn)
	}
	for _, urn := range urns {
		if err := client.WaitState(urn, task.StateExited, 30*time.Second); err != nil {
			log.Fatal(err)
		}
	}

	// Merge the published partial counts into the catalog.
	type entry struct {
		term  string
		count int
	}
	var index []entry
	for term := range termUniverse() {
		vals, err := client.Lookup(indexURI, "term:"+term)
		if err != nil {
			log.Fatal(err)
		}
		total := 0
		for _, v := range vals {
			if i := strings.LastIndexByte(v, '='); i >= 0 {
				n, _ := strconv.Atoi(v[i+1:])
				total += n
			}
		}
		if total > 0 {
			index = append(index, entry{term, total})
		}
	}
	sort.Slice(index, func(i, j int) bool {
		if index[i].count != index[j].count {
			return index[i].count > index[j].count
		}
		return index[i].term < index[j].term
	})
	fmt.Println("top catalog terms:")
	for _, e := range index[:5] {
		fmt.Printf("  %-12s %d\n", e.term, e.count)
	}
}

// termUniverse collects every term in the corpus (the cataloguer knows
// the vocabulary it asked the indexers to count).
func termUniverse() map[string]bool {
	out := map[string]bool{}
	for _, text := range corpus {
		for _, w := range strings.Fields(text) {
			out[w] = true
		}
	}
	return out
}
